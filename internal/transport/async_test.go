package transport

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fifl/internal/chain"
	"fifl/internal/core"
	"fifl/internal/faults"
	"fifl/internal/fl"
	"fifl/internal/metrics"
	"fifl/internal/rng"
	"fifl/internal/transport/codec"
)

// TestAsyncLoopbackFederationWithStraggler is the tentpole's wire
// acceptance test: a 3-worker federation over real HTTP in async mode,
// where workers 0 and 1 submit promptly while worker 2 trains against the
// round-0 broadcast and delivers its upload only after the model has
// advanced past the staleness bound. The late upload must be accepted at
// the door (any-time submit), rejected by the bounded-staleness rule
// (StatusStale), priced as a negative reputation event on the ledger, and
// the fresh workers must keep converging and earning.
func TestAsyncLoopbackFederationWithStraggler(t *testing.T) {
	const (
		nWorkers     = 3
		nRounds      = 5
		maxStaleness = 1
	)
	recipe := Recipe{Seed: 13, Workers: nWorkers, SamplesPerWorker: 60}
	build, err := recipe.Builder()
	if err != nil {
		t.Fatal(err)
	}
	hub, err := NewHub(nWorkers)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := fl.NewEngine(fl.Config{Servers: 2, GlobalLR: 0.05}, build, hub.Workers(),
		rng.New(recipe.Seed).Split("asyncfed"),
		fl.WithWorkerTimeout(2*time.Second), fl.WithMetrics(metrics.New()))
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewAsyncCollector(hub, engine, AsyncConfig{
		MaxStaleness:    maxStaleness,
		AdvanceEvery:    2, // workers 0 and 1 drive the cadence
		AdvanceInterval: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := core.NewCoordinator(coordConfig(), engine, []int{0, 1}, core.WithCollector(col))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(coord, hub)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	clients := make([]*Client, nWorkers)
	for i := 0; i < nWorkers; i++ {
		w, err := recipe.Worker(i)
		if err != nil {
			t.Fatal(err)
		}
		clients[i], err = DialWorker(ctx, ClientConfig{BaseURL: ts.URL, Worker: w, PollWait: 500 * time.Millisecond})
		if err != nil {
			t.Fatalf("dialing worker %d: %v", i, err)
		}
	}
	if err := srv.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	clientErr := make([]error, nWorkers)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, clientErr[i] = clients[i].Run(ctx)
		}(i)
	}
	// Worker 2 is the injected straggler: it pulls the round-0 model,
	// trains honestly, then sits on the finished upload until the
	// federation has advanced past the staleness bound.
	wg.Add(1)
	go func() {
		defer wg.Done()
		w, err := recipe.Worker(2)
		if err != nil {
			clientErr[2] = err
			return
		}
		resp, err := http.Get(ts.URL + "/v1/model?after=-1&wait=10000")
		if err != nil {
			clientErr[2] = err
			return
		}
		body := new(bytes.Buffer)
		_, err = body.ReadFrom(resp.Body)
		resp.Body.Close()
		if err != nil {
			clientErr[2] = err
			return
		}
		m, err := codec.DecodeModel(body.Bytes())
		if err != nil {
			clientErr[2] = err
			return
		}
		grad := w.LocalTrain(m.Round, m.Params)
		for {
			if r, _, _ := hub.model(); r >= m.Round+maxStaleness+2 {
				break
			}
			select {
			case <-ctx.Done():
				clientErr[2] = ctx.Err()
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
		frame, err := codec.EncodeUpload(codec.Upload{
			Round: m.Round, Worker: 2, Samples: w.NumSamples(), Grad: grad,
		}, codec.CompressionNone)
		if err != nil {
			clientErr[2] = err
			return
		}
		post, err := http.Post(ts.URL+"/v1/round/submit", "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			clientErr[2] = err
			return
		}
		post.Body.Close()
		if post.StatusCode != http.StatusNoContent {
			clientErr[2] = errStatus(post.StatusCode)
		}
	}()

	initial := append([]float64(nil), engine.Params()...)
	reports := make([]*core.RoundReport, nRounds)
	for i := 0; i < nRounds; i++ {
		if reports[i], err = srv.RunRound(ctx, i); err != nil {
			t.Fatalf("async round %d: %v", i, err)
		}
	}
	srv.MarkDone()
	wg.Wait()
	for i, err := range clientErr {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	// Every advance committed, and worker 2 progressed from pending to a
	// rejected stale fold exactly once.
	staleRound := -1
	for r, rep := range reports {
		if !rep.Committed {
			t.Fatalf("advance %d did not commit", r)
		}
		if rep.Staleness == nil {
			t.Fatalf("advance %d carries no staleness metadata", r)
		}
		switch rep.Statuses[2] {
		case faults.StatusPending:
		case faults.StatusStale:
			if staleRound >= 0 {
				t.Fatalf("worker 2 stale in advances %d and %d, want once", staleRound, r)
			}
			staleRound = r
			if s := rep.Staleness[2]; s <= maxStaleness {
				t.Fatalf("advance %d: worker 2 rejected at staleness %d <= bound %d", r, s, maxStaleness)
			}
		default:
			t.Fatalf("advance %d: worker 2 status %v, want pending or stale", r, rep.Statuses[2])
		}
	}
	if staleRound < 0 {
		t.Fatal("the over-bound upload was never folded as stale")
	}

	// The rejection is an Eq. 8–10 negative event: the stale advance wrote
	// worker 2's reputation to the ledger, and its balance ends below the
	// prompt workers'.
	if recs := coord.Ledger.Query(chain.KindReputation, staleRound, 2); len(recs) == 0 {
		t.Fatalf("no reputation record on the ledger for worker 2 in advance %d", staleRound)
	}
	if rw := reports[staleRound].Rewards[2]; rw > 0 {
		t.Fatalf("rejected stale upload was paid %v", rw)
	}
	// Eq. 8–10 event classes: the stale advance is a negative event
	// (arrived but rejected, not uncertain); the pending advances before it
	// are uncertain events, exactly like sync-mode timeouts.
	det := reports[staleRound].Detection
	if det.Accept[2] || det.Uncertain[2] {
		t.Fatalf("stale upload classified accept=%v uncertain=%v, want a negative event", det.Accept[2], det.Uncertain[2])
	}
	for r := 0; r < staleRound; r++ {
		if !reports[r].Detection.Uncertain[2] {
			t.Fatalf("pending advance %d not classified as an uncertain event", r)
		}
	}

	// The prompt workers kept training: the global model moved.
	moved := false
	for i, p := range engine.Params() {
		if p != initial[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("global parameters never advanced")
	}
	if err := coord.Ledger.Verify(); err != nil {
		t.Fatalf("async ledger failed verification: %v", err)
	}
}

// errStatus converts an unexpected HTTP status into an error.
type errStatus int

func (e errStatus) Error() string { return "unexpected HTTP status " + http.StatusText(int(e)) }
