package transport

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fifl/internal/core"
	"fifl/internal/faults"
	"fifl/internal/fl"
	"fifl/internal/metrics"
	"fifl/internal/rng"
)

// submitDropper is a RoundTripper that lets every request through to the
// server but "loses" the 204 of each distinct POST /v1/round/submit body
// the first time it is seen — the lost-acknowledgement failure: the server
// accepted the frame, the client never learned. Every submission is thus
// forced through one retry, which the hub must absorb as an idempotent
// replay.
type submitDropper struct {
	base http.RoundTripper

	mu    sync.Mutex
	seen  map[string]bool
	drops int
}

func newSubmitDropper(base http.RoundTripper) *submitDropper {
	return &submitDropper{base: base, seen: make(map[string]bool)}
}

func (d *submitDropper) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := d.base.RoundTrip(req)
	if err != nil || req.Method != http.MethodPost || req.URL.Path != "/v1/round/submit" ||
		resp.StatusCode != http.StatusNoContent || req.GetBody == nil {
		return resp, err
	}
	rc, berr := req.GetBody()
	if berr != nil {
		return resp, err
	}
	body, berr := io.ReadAll(rc)
	rc.Close()
	if berr != nil {
		return resp, err
	}
	d.mu.Lock()
	first := !d.seen[string(body)]
	d.seen[string(body)] = true
	if first {
		d.drops++
	}
	d.mu.Unlock()
	if first {
		resp.Body.Close()
		return nil, fmt.Errorf("synthetic fault: 204 lost on the wire")
	}
	return resp, nil
}

// loopbackRun is one complete 2-worker federation over httptest loopback.
type loopbackRun struct {
	reports []*core.RoundReport
	params  []float64
	up      []int64
	down    []int64
	reg     *metrics.Registry
	metaURL string // the test server's base URL, alive until test cleanup
}

// runLoopback drives a clean 2-worker, nRounds federation over real HTTP
// into its own metrics registry. wrap, when non-nil, replaces worker i's
// HTTP transport (the fault-injection hook).
func runLoopback(t *testing.T, seed uint64, nRounds int, wrap func(worker int, base http.RoundTripper) http.RoundTripper) *loopbackRun {
	t.Helper()
	const nWorkers = 2
	recipe := Recipe{Seed: seed, Workers: nWorkers, SamplesPerWorker: 40}
	build, err := recipe.Builder()
	if err != nil {
		t.Fatal(err)
	}
	hub, err := NewHub(nWorkers)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	engine, err := fl.NewEngine(fl.Config{Servers: 1, GlobalLR: 0.05}, build, hub.Workers(),
		rng.New(recipe.Seed).Split("regress"),
		fl.WithWorkerTimeout(10*time.Second), fl.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	coord, err := core.NewCoordinator(coordConfig(), engine, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(coord, hub)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	errs := make([]error, nWorkers)
	for i := 0; i < nWorkers; i++ {
		w, err := recipe.Worker(i)
		if err != nil {
			t.Fatal(err)
		}
		cfg := ClientConfig{BaseURL: ts.URL, Worker: w, PollWait: 500 * time.Millisecond, Metrics: reg}
		if wrap != nil {
			cfg.HTTPClient = &http.Client{Transport: wrap(i, http.DefaultTransport), Timeout: time.Minute}
		}
		c, err := DialWorker(ctx, cfg)
		if err != nil {
			t.Fatalf("dialing worker %d: %v", i, err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Run(ctx)
		}(i)
	}
	if err := srv.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	reports := make([]*core.RoundReport, nRounds)
	for r := 0; r < nRounds; r++ {
		if reports[r], err = srv.RunRound(ctx, r); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	srv.MarkDone()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	up, down := srv.WorkerTraffic()
	return &loopbackRun{
		reports: reports,
		params:  engine.Params(),
		up:      up,
		down:    down,
		reg:     reg,
		metaURL: ts.URL,
	}
}

// TestRetriedSubmitIdempotent: a client whose every submit acknowledgement
// is lost once (hello and all uploads) must complete the federation
// bit-identically to an undisturbed run on the same seed — replays are
// absorbed, never double-counted, and every status stays OK. This is the
// regression test for the duplicate-submission 409 on retry after a lost
// 204.
func TestRetriedSubmitIdempotent(t *testing.T) {
	const nRounds = 2
	clean := runLoopback(t, 21, nRounds, nil)

	var dropper *submitDropper
	lossy := runLoopback(t, 21, nRounds, func(worker int, base http.RoundTripper) http.RoundTripper {
		if worker != 0 {
			return base
		}
		dropper = newSubmitDropper(base)
		return dropper
	})

	// Worker 0 lost one hello ack and one ack per round's upload.
	dropper.mu.Lock()
	drops := dropper.drops
	dropper.mu.Unlock()
	if want := 1 + nRounds; drops != want {
		t.Fatalf("dropper lost %d acknowledgements, want %d", drops, want)
	}
	// The server saw each upload replay exactly once (hello replays are
	// absorbed by the hub's idempotent hello, not counted here).
	if got := lossy.reg.Snapshot().CounterValue("fifl_transport_submit_replays_total"); got != nRounds {
		t.Fatalf("replay counter = %d, want %d", got, nRounds)
	}

	for r := 0; r < nRounds; r++ {
		ref, got := clean.reports[r], lossy.reports[r]
		if ref.Committed != got.Committed {
			t.Fatalf("round %d: committed %v vs %v", r, got.Committed, ref.Committed)
		}
		for i := range ref.Statuses {
			if got.Statuses[i] != faults.StatusOK {
				t.Fatalf("round %d worker %d: status %v with lossy acks, want ok", r, i, got.Statuses[i])
			}
			if ref.Statuses[i] != got.Statuses[i] {
				t.Fatalf("round %d worker %d: status %v vs %v", r, i, got.Statuses[i], ref.Statuses[i])
			}
			if math.Float64bits(ref.Reputations[i]) != math.Float64bits(got.Reputations[i]) {
				t.Fatalf("round %d worker %d: reputation diverged under replays", r, i)
			}
			if math.Float64bits(ref.Rewards[i]) != math.Float64bits(got.Rewards[i]) {
				t.Fatalf("round %d worker %d: reward diverged under replays", r, i)
			}
		}
	}
	for i := range clean.params {
		if math.Float64bits(clean.params[i]) != math.Float64bits(lossy.params[i]) {
			t.Fatalf("global parameter %d diverged under replays", i)
		}
	}
	// Replays must not inflate the wire accounting.
	for i := range clean.up {
		if clean.up[i] != lossy.up[i] || clean.down[i] != lossy.down[i] {
			t.Fatalf("worker %d traffic with replays (%d up / %d down) != clean (%d / %d)",
				i, lossy.up[i], lossy.down[i], clean.up[i], clean.down[i])
		}
	}
}

// TestMetricsMatchTraffic: the registry's per-worker byte counters must
// equal Server.WorkerTraffic for the same run, the engine round counter
// must equal the rounds driven, and /v1/metrics must serve it all in the
// Prometheus text exposition format.
func TestMetricsMatchTraffic(t *testing.T) {
	const nRounds = 2
	run := runLoopback(t, 33, nRounds, nil)
	snap := run.reg.Snapshot()

	for i := range run.up {
		w := strconv.Itoa(i)
		if got := snap.CounterValue("fifl_transport_upload_bytes_total", "worker", w); got != run.up[i] {
			t.Fatalf("upload byte counter for worker %d = %d, WorkerTraffic says %d", i, got, run.up[i])
		}
		if got := snap.CounterValue("fifl_transport_model_bytes_total", "worker", w); got != run.down[i] {
			t.Fatalf("model byte counter for worker %d = %d, WorkerTraffic says %d", i, got, run.down[i])
		}
	}
	if got := snap.CounterValue("fifl_engine_rounds_total"); got != nRounds {
		t.Fatalf("engine round counter = %d, want %d", got, nRounds)
	}
	if got := snap.CounterValue("fifl_engine_rounds_committed_total"); got != nRounds {
		t.Fatalf("committed round counter = %d, want %d", got, nRounds)
	}
	// Every upload arrived first try: 2 workers × nRounds OK uploads.
	if got := snap.CounterValue("fifl_engine_uploads_total", "status", "ok"); got != 2*nRounds {
		t.Fatalf("ok upload counter = %d, want %d", got, 2*nRounds)
	}
	if got := snap.CounterValue("fifl_transport_submit_replays_total"); got != 0 {
		t.Fatalf("clean run recorded %d replays", got)
	}

	// The same numbers over the wire, in exposition format.
	resp, err := http.Get(run.metaURL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE fifl_http_requests_total counter\n",
		"# TYPE fifl_engine_round_phase_seconds histogram\n",
		fmt.Sprintf("fifl_engine_rounds_total %d\n", nRounds),
		fmt.Sprintf("fifl_transport_upload_bytes_total{worker=\"0\"} %d\n", run.up[0]),
		fmt.Sprintf("fifl_transport_upload_bytes_total{worker=\"1\"} %d\n", run.up[1]),
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/v1/metrics output missing %q; got:\n%s", want, text)
		}
	}
}

// TestDialWorkerValidation: garbage coordinator URLs must be rejected at
// dial time with a clear error, not after a full retry cycle against a
// nonsense address. Regression test for url.Parse accepting "not-a-url".
func TestDialWorkerValidation(t *testing.T) {
	recipe := Recipe{Seed: 1, Workers: 1, SamplesPerWorker: 20}
	w, err := recipe.Worker(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, bad := range []string{
		"",
		"not-a-url",
		"127.0.0.1:7070",       // no scheme
		"http://",              // no host
		"ftp://127.0.0.1:7070", // wrong scheme
		"://missing",
	} {
		if _, err := DialWorker(ctx, ClientConfig{BaseURL: bad, Worker: w}); err == nil {
			t.Fatalf("DialWorker accepted BaseURL %q", bad)
		} else if !strings.Contains(err.Error(), "transport: DialWorker") {
			t.Fatalf("BaseURL %q failed with an unexpected error: %v", bad, err)
		}
	}
	if _, err := DialWorker(ctx, ClientConfig{BaseURL: "http://127.0.0.1:1"}); err == nil {
		t.Fatal("DialWorker accepted a nil worker")
	}
}

// TestRetryWaitClamp: the exponential backoff schedule must stay positive
// and bounded however large the attempt count or base — regression test
// for RetryBackoff << (attempt-1) overflowing into a negative sleep.
func TestRetryWaitClamp(t *testing.T) {
	base := 100 * time.Millisecond
	if got := retryWait(base, 1); got != base {
		t.Fatalf("attempt 1 wait = %v, want %v", got, base)
	}
	if got := retryWait(base, 3); got != 4*base {
		t.Fatalf("attempt 3 wait = %v, want %v", got, 4*base)
	}
	for _, attempt := range []int{10, 63, 64, 65, 1 << 20} {
		got := retryWait(base, attempt)
		if got <= 0 || got > maxRetryWait {
			t.Fatalf("attempt %d wait = %v, outside (0, %v]", attempt, got, maxRetryWait)
		}
	}
	if got := retryWait(time.Hour, 5); got != maxRetryWait {
		t.Fatalf("huge base wait = %v, want clamp to %v", got, maxRetryWait)
	}
}

// TestResponseLimitExplicitError: a response bigger than the client's
// budget must fail with an explicit limit error on the first attempt —
// not a silent truncation surfacing as a CRC mismatch, and not a retry
// storm (a bigger response will not fit next time either).
func TestResponseLimitExplicitError(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		_, _ = w.Write(make([]byte, 100))
	}))
	defer ts.Close()

	c := &Client{
		cfg: ClientConfig{
			BaseURL:          ts.URL,
			RetryAttempts:    3,
			RetryBackoff:     time.Millisecond,
			MaxResponseBytes: 16,
		},
		http:      ts.Client(),
		lastRound: noRound,
		cm:        newClientMetrics(metrics.New()),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := c.get(ctx, "/v1/model")
	if err == nil {
		t.Fatal("oversized response accepted")
	}
	if !strings.Contains(err.Error(), "exceeds the 16-byte limit") {
		t.Fatalf("oversized response failed with %v, want an explicit limit error", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("oversized response was requested %d times, want 1 (terminal, no retry)", got)
	}

	// Exactly at the limit is fine.
	c.cfg.MaxResponseBytes = 100
	out, err := c.get(ctx, "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("read %d bytes, want 100", len(out))
	}
}

// TestResponseLimitDefaults: the ledger endpoint gets its own much larger
// budget — a full-run chain export dwarfs a gradient frame — while
// everything else keeps the frame-size cap, and an explicit
// MaxResponseBytes overrides both.
func TestResponseLimitDefaults(t *testing.T) {
	c := &Client{cfg: ClientConfig{}}
	if got := c.responseLimit("/v1/model"); got != maxUploadBytes {
		t.Fatalf("model budget = %d, want %d", got, int64(maxUploadBytes))
	}
	if got := c.responseLimit("/v1/ledger"); got != maxLedgerBytes {
		t.Fatalf("ledger budget = %d, want %d", got, int64(maxLedgerBytes))
	}
	c.cfg.MaxResponseBytes = 512
	if got := c.responseLimit("/v1/ledger"); got != 512 {
		t.Fatalf("override budget = %d, want 512", got)
	}
}
