package transport

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"fifl/internal/faults"
	"fifl/internal/fl"
	"fifl/internal/gradvec"
	"fifl/internal/metrics"
	"fifl/internal/persist"
)

// AsyncConfig parameterizes the wire-side bounded-staleness collector.
type AsyncConfig struct {
	// MaxStaleness bounds how old a broadcast a submission may have trained
	// against: staleness s = current round - trained round contributes with
	// weight 1/(1+s) up to the bound; past it the upload is rejected
	// (faults.StatusStale) and penalized as a negative reputation event.
	MaxStaleness int
	// AdvanceEvery is the count cadence: the model advances once this many
	// submissions have been folded into the window. Must be >= 1.
	AdvanceEvery int
	// AdvanceInterval is the time cadence: a window that has waited this
	// long advances with whatever arrived, possibly nothing. 0 disables the
	// timer (count trigger only).
	AdvanceInterval time.Duration
}

// UnsatisfiableAdvanceError reports an async configuration whose advance
// trigger can never fire: the count cadence demands more submissions than
// the federation can deliver between advances (each worker submits once
// per broadcast, and the next broadcast only happens after an advance),
// and no time cadence exists to break the deadlock — Hub.takePending
// would block forever on a nil deadline channel.
type UnsatisfiableAdvanceError struct {
	// AdvanceEvery is the configured count trigger.
	AdvanceEvery int
	// Workers is the federation size the trigger can never be met by.
	Workers int
}

func (e *UnsatisfiableAdvanceError) Error() string {
	return fmt.Sprintf(
		"transport: AsyncConfig.AdvanceEvery=%d exceeds the federation size %d with no AdvanceInterval — the advance trigger can never fire",
		e.AdvanceEvery, e.Workers)
}

// Validate reports whether the configuration describes a runnable
// collector.
func (c AsyncConfig) Validate() error {
	if c.MaxStaleness < 0 {
		return fmt.Errorf("transport: AsyncConfig.MaxStaleness must be >= 0, got %d", c.MaxStaleness)
	}
	if c.AdvanceEvery < 1 {
		return fmt.Errorf("transport: AsyncConfig.AdvanceEvery must be >= 1, got %d", c.AdvanceEvery)
	}
	if c.AdvanceInterval < 0 {
		return fmt.Errorf("transport: AsyncConfig.AdvanceInterval must be >= 0, got %v", c.AdvanceInterval)
	}
	return nil
}

// AsyncCollector is the wire-side asynchronous Collect stage: workers
// submit over HTTP whenever they finish training — tagged with the
// broadcast round they trained against — and each advance window drains
// the hub's queue, folds the freshest submission per worker with
// staleness weight 1/(1+s), rejects anything past the bound, and leaves
// everyone else pending. The advance cadence is count (AdvanceEvery) or
// time (AdvanceInterval), whichever fires first.
type AsyncCollector struct {
	hub    *Hub
	engine *fl.Engine
	cfg    AsyncConfig

	// carry holds submissions reinstated from a checkpoint; the next
	// window folds them before draining live traffic.
	carry []pendingSub

	subs       []*metrics.Counter // per-staleness-bucket submission counters
	overSubs   *metrics.Counter
	superseded *metrics.Counter
}

// NewAsyncCollector switches the hub into async mode and builds the
// collector over it. The engine must be the coordinator's engine built
// over hub.Workers(); its synchronous runtime options (quorum, deadlines,
// fault injection) do not apply to async windows.
func NewAsyncCollector(hub *Hub, engine *fl.Engine, cfg AsyncConfig) (*AsyncCollector, error) {
	if hub == nil {
		return nil, fmt.Errorf("transport: NewAsyncCollector requires a hub")
	}
	if engine == nil {
		return nil, fmt.Errorf("transport: NewAsyncCollector requires an engine")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if got := len(engine.Workers); got != hub.n {
		return nil, fmt.Errorf("transport: engine has %d workers, hub expects %d", got, hub.n)
	}
	// With the timer disabled, the count trigger is the only way a window
	// advances — and between advances each worker submits at most once (it
	// has nothing new to train against until the next broadcast). A count
	// above the federation size therefore deadlocks takePending on its nil
	// deadline channel; reject it here instead of hanging the first round.
	if cfg.AdvanceInterval <= 0 && cfg.AdvanceEvery > hub.n {
		return nil, &UnsatisfiableAdvanceError{AdvanceEvery: cfg.AdvanceEvery, Workers: hub.n}
	}
	if err := hub.EnableAsync(cfg.MaxStaleness); err != nil {
		return nil, err
	}
	c := &AsyncCollector{hub: hub, engine: engine, cfg: cfg}
	reg := engine.Metrics()
	reg.Help("fifl_async_submissions_total",
		"Async submissions folded per advance window, bucketed by staleness; 'over' = past the bound and rejected.")
	c.subs = make([]*metrics.Counter, cfg.MaxStaleness+1)
	for s := range c.subs {
		c.subs[s] = reg.Counter("fifl_async_submissions_total", "staleness", strconv.Itoa(s))
	}
	c.overSubs = reg.Counter("fifl_async_submissions_total", "staleness", "over")
	reg.Help("fifl_async_superseded_total",
		"Async submissions dominated by a fresher same-worker submission in the same advance window and dropped unfolded.")
	c.superseded = reg.Counter("fifl_async_superseded_total")
	return c, nil
}

// MaxStaleness reports the collector's staleness bound.
func (c *AsyncCollector) MaxStaleness() int { return c.cfg.MaxStaleness }

// CollectRound runs one advance window: broadcast the round-t model, wait
// for the cadence to fire, and fold what arrived. Submissions race the
// window boundary by design — one that misses this drain is simply queued
// for the next, one staleness older.
func (c *AsyncCollector) CollectRound(ctx context.Context, t int) (*fl.RoundResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("transport: async round %d: %w", t, err)
	}
	if t < 0 {
		return nil, fmt.Errorf("transport: async round %d is negative", t)
	}
	c.hub.publish(t, c.engine.Params())
	need := c.cfg.AdvanceEvery - len(c.carry)
	if need < 0 {
		need = 0
	}
	taken, err := c.hub.takePending(ctx, need, c.cfg.AdvanceInterval)
	if err != nil {
		return nil, fmt.Errorf("transport: async round %d: %w", t, err)
	}
	window := append(c.carry, taken...)
	c.carry = nil

	n := len(c.engine.Workers)
	rr := &fl.RoundResult{
		Round:     t,
		Grads:     make([]gradvec.Vector, n),
		Samples:   make([]int, n),
		Status:    make([]faults.UploadStatus, n),
		Retries:   make([]int, n),
		Staleness: make([]int, n),
		Committed: true,
	}
	for i, w := range c.engine.Workers {
		rr.Samples[i] = w.NumSamples()
		rr.Status[i] = faults.StatusPending
		rr.Staleness[i] = fl.NoSubmission
	}
	// Freshest submission per worker wins; an older one it supersedes in
	// the same window is dominated and dropped without prejudice.
	best := make(map[int]pendingSub, len(window))
	for _, sub := range window {
		if prev, seen := best[sub.worker]; !seen || sub.round > prev.round {
			best[sub.worker] = sub
		}
	}
	if dropped := len(window) - len(best); dropped > 0 {
		c.superseded.Add(int64(dropped))
	}
	for w, sub := range best {
		s := t - sub.round
		if s < 0 {
			s = 0 // a same-window submission for the just-published round
		}
		rr.Staleness[w] = s
		if s > c.cfg.MaxStaleness {
			c.overSubs.Inc()
			rr.Status[w] = faults.StatusStale
			// The rejected upload contributes no gradient, so it carries no
			// sample weight either — the row must not claim NumSamples() it
			// never delivered.
			rr.Samples[w] = 0
			continue
		}
		c.subs[s].Inc()
		rr.Grads[w] = sub.grad
		rr.Samples[w] = sub.samples
		rr.Status[w] = faults.StatusOK
		rr.Arrived++
	}
	return rr, nil
}

// AsyncSnapshot captures the collector's inter-round state: the wire
// uploads queued (or carried) but not yet folded into any window. The
// queue is copied, not drained — checkpointing must not perturb the run.
func (c *AsyncCollector) AsyncSnapshot() (*persist.AsyncState, error) {
	queued := append(append([]pendingSub(nil), c.carry...), c.hub.peekPending()...)
	st := &persist.AsyncState{Pending: make([]persist.AsyncUpload, len(queued))}
	for i, sub := range queued {
		st.Pending[i] = persist.AsyncUpload{
			Worker:       sub.worker,
			TrainedRound: sub.round,
			Samples:      sub.samples,
			Grad:         append([]float64(nil), sub.grad...),
		}
	}
	return st, nil
}

// RestoreAsync reinstates checkpointed pending uploads into a collector
// that has not run any window yet; the next CollectRound folds them first.
func (c *AsyncCollector) RestoreAsync(st *persist.AsyncState) error {
	if st == nil {
		return fmt.Errorf("transport: checkpoint carries no async state — was it taken in sync mode?")
	}
	if len(st.HistRounds) > 0 {
		return fmt.Errorf("transport: checkpoint carries in-process model history — restore it with fl.AsyncCollector")
	}
	if len(c.carry) > 0 {
		return fmt.Errorf("transport: RestoreAsync on a collector already carrying %d uploads", len(c.carry))
	}
	dim := len(c.engine.Params())
	carry := make([]pendingSub, len(st.Pending))
	for i, u := range st.Pending {
		if u.Worker < 0 || u.Worker >= c.hub.n {
			return fmt.Errorf("transport: checkpointed upload %d is from worker %d, federation has %d", i, u.Worker, c.hub.n)
		}
		if len(u.Grad) != dim {
			return fmt.Errorf("transport: checkpointed upload %d has %d dims, model has %d", i, len(u.Grad), dim)
		}
		carry[i] = pendingSub{
			worker:  u.Worker,
			round:   u.TrainedRound,
			samples: u.Samples,
			grad:    append(gradvec.Vector(nil), u.Grad...),
		}
	}
	c.carry = carry
	return nil
}
