package transport

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"fifl/internal/chain"
	"fifl/internal/fl"
	"fifl/internal/metrics"
	"fifl/internal/transport/codec"
)

// maxLedgerBytes is the default response budget for /v1/ledger downloads:
// a full-run audit chain export dwarfs any single gradient frame, so the
// ledger gets its own, much larger cap.
const maxLedgerBytes = 1 << 30

// maxRetryWait caps one retry backoff sleep, and is the fallback when the
// exponential schedule overflows.
const maxRetryWait = 30 * time.Second

// maxBackoffShift bounds the exponent of the retry backoff schedule so a
// large RetryAttempts cannot overflow RetryBackoff << (attempt-1).
const maxBackoffShift = 16

// ClientConfig configures a worker's connection to a coordinator.
type ClientConfig struct {
	// BaseURL is the coordinator's root, e.g. "http://127.0.0.1:7070".
	// It must be an absolute http or https URL; DialWorker rejects
	// anything else up front instead of letting a typo surface later as an
	// opaque retry exhaustion.
	BaseURL string
	// Worker is the local participant: its ID names the federation slot,
	// NumSamples is registered at hello, and LocalTrain runs each round.
	Worker fl.Worker
	// HTTPClient overrides the transport (nil = a client with sane
	// timeouts for long polls).
	HTTPClient *http.Client
	// PollWait caps one model long poll (0 = 5s).
	PollWait time.Duration
	// RetryAttempts is how many times a failed HTTP request is retried
	// before giving up (0 = 3); RetryBackoff is the base delay between
	// attempts, doubling each retry (0 = 100ms). The schedule is clamped:
	// no single wait exceeds 30s regardless of the attempt count.
	RetryAttempts int
	RetryBackoff  time.Duration
	// MaxResponseBytes caps one response body read (0 = 64 MiB, with
	// /v1/ledger given a 1 GiB budget). A response past the cap fails with
	// an explicit "exceeds the response limit" error — terminal, not
	// retried — instead of a truncated read and a misleading CRC failure.
	MaxResponseBytes int64
	// Compression selects the wire layout for this worker's traffic,
	// negotiated once at dial time: uploads are encoded in it, and model
	// and report downloads are requested in it via the `enc` query
	// parameter (the server degrades topk to f32 for those dense
	// broadcasts). Every mode except codec.CompressionNone is lossy and
	// forfeits bit-identity with an in-process run — except on audit
	// rounds, see AuditEvery.
	Compression codec.Compression
	// AuditEvery is the bit-identity escape hatch: every AuditEvery-th
	// round (t % AuditEvery == 0) is carried dense float64 regardless of
	// Compression, so auditors can spot-check exact gradients on a
	// schedule. 0 disables auditing; 1 forces every round dense, making
	// the whole run bit-identical to an uncompressed one.
	AuditEvery int
	// Float32 is the deprecated spelling of Compression:
	// codec.CompressionF32. It is honored only when Compression is
	// CompressionNone.
	//
	// Deprecated: set Compression instead.
	Float32 bool
	// Metrics selects the registry the client instruments itself into —
	// request counts/latencies per endpoint, retry attempts, bytes moved,
	// codec throughput (0 = the process-wide metrics.Default). Metrics are
	// observability-only and never feed a decision.
	Metrics *metrics.Registry
}

// Client is a worker's connection to a coordinator: it registers at hello,
// then repeats poll-train-submit until the coordinator broadcasts done.
type Client struct {
	cfg       ClientConfig
	http      *http.Client
	lastRound int
	cm        *clientMetrics
}

// DialWorker validates the configuration and registers the worker with the
// coordinator (the hello handshake). The returned client is single-
// goroutine: drive it with Run or RunRound.
func DialWorker(ctx context.Context, cfg ClientConfig) (*Client, error) {
	if cfg.Worker == nil {
		return nil, fmt.Errorf("transport: DialWorker requires a worker")
	}
	u, err := url.Parse(cfg.BaseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("transport: DialWorker requires an absolute coordinator URL (scheme://host[:port]), got %q", cfg.BaseURL)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("transport: DialWorker speaks http/https, got scheme %q in %q", u.Scheme, cfg.BaseURL)
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 5 * time.Second
	}
	if cfg.RetryAttempts <= 0 {
		cfg.RetryAttempts = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if !cfg.Compression.Valid() {
		return nil, fmt.Errorf("transport: DialWorker got invalid compression mode %s", cfg.Compression)
	}
	if cfg.Compression == codec.CompressionNone && cfg.Float32 {
		cfg.Compression = codec.CompressionF32
	}
	if cfg.AuditEvery < 0 {
		return nil, fmt.Errorf("transport: DialWorker requires a non-negative audit cadence, got %d", cfg.AuditEvery)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	c := &Client{cfg: cfg, http: cfg.HTTPClient, lastRound: noRound, cm: newClientMetrics(reg)}
	if c.http == nil {
		c.http = &http.Client{Timeout: cfg.PollWait + 30*time.Second}
	}
	frame, err := codec.EncodeHello(codec.Hello{Worker: cfg.Worker.ID(), Samples: cfg.Worker.NumSamples()})
	if err != nil {
		return nil, err
	}
	if _, err := c.post(ctx, "/v1/round/submit", frame); err != nil {
		return nil, fmt.Errorf("transport: hello: %w", err)
	}
	return c, nil
}

// compressionFor returns the wire mode for the given round: the
// negotiated mode, except on audit rounds, which are always dense.
func (c *Client) compressionFor(round int) codec.Compression {
	if c.cfg.AuditEvery > 0 && round >= 0 && round%c.cfg.AuditEvery == 0 {
		return codec.CompressionNone
	}
	return c.cfg.Compression
}

// RunRound performs one poll-train-submit cycle. done reports that the
// coordinator broadcast the terminal frame; trained reports whether this
// call actually trained and submitted (false on an empty long poll).
func (c *Client) RunRound(ctx context.Context) (trained, done bool, err error) {
	q := url.Values{
		"after":  {strconv.Itoa(c.lastRound)},
		"worker": {strconv.Itoa(c.cfg.Worker.ID())},
		"wait":   {strconv.Itoa(int(c.cfg.PollWait / time.Millisecond))},
	}
	// The download mode predicts the next round as lastRound+1. A stale
	// prediction (the hub skipped ahead) only costs download fidelity for
	// one frame; the upload decision below uses the round the model frame
	// actually names, so audit-round uploads are always exact.
	if dl := c.compressionFor(c.lastRound + 1); dl != codec.CompressionNone {
		q.Set("enc", dl.String())
	}
	body, err := c.get(ctx, "/v1/model?"+q.Encode())
	if err != nil {
		return false, false, fmt.Errorf("transport: polling model: %w", err)
	}
	if body == nil { // empty poll window
		return false, false, nil
	}
	decStart := time.Now()
	m, err := codec.DecodeModel(body)
	c.cm.decodeSec.ObserveSince(decStart)
	c.cm.decodeBytes.Add(int64(len(body)))
	if err != nil {
		return false, false, fmt.Errorf("transport: model frame: %w", err)
	}
	if m.Done {
		return false, true, nil
	}
	grad := c.cfg.Worker.LocalTrain(m.Round, m.Params)
	encStart := time.Now()
	frame, err := codec.EncodeUpload(codec.Upload{
		Round:   m.Round,
		Worker:  c.cfg.Worker.ID(),
		Samples: c.cfg.Worker.NumSamples(),
		Grad:    grad,
	}, c.compressionFor(m.Round))
	if err != nil {
		return false, false, fmt.Errorf("transport: encoding upload for round %d: %w", m.Round, err)
	}
	c.cm.encodeSec.ObserveSince(encStart)
	c.cm.encodeBytes.Add(int64(len(frame)))
	if _, err := c.post(ctx, "/v1/round/submit", frame); err != nil {
		return false, false, fmt.Errorf("transport: submitting round %d: %w", m.Round, err)
	}
	c.lastRound = m.Round
	return true, false, nil
}

// Run repeats RunRound until the coordinator broadcasts done or the
// context is cancelled, returning the number of rounds trained.
func (c *Client) Run(ctx context.Context) (rounds int, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return rounds, err
		}
		trained, done, err := c.RunRound(ctx)
		if err != nil {
			return rounds, err
		}
		if trained {
			rounds++
		}
		if done {
			return rounds, nil
		}
	}
}

// LastRound returns the most recent round this client trained in, or -1
// before any round.
func (c *Client) LastRound() int { return c.lastRound }

// FetchReport downloads one round's assessment.
func (c *Client) FetchReport(ctx context.Context, round int) (codec.Report, error) {
	q := url.Values{"round": {strconv.Itoa(round)}}
	if dl := c.compressionFor(round); dl != codec.CompressionNone {
		q.Set("enc", dl.String())
	}
	body, err := c.get(ctx, "/v1/round/report?"+q.Encode())
	if err != nil {
		return codec.Report{}, fmt.Errorf("transport: fetching report %d: %w", round, err)
	}
	if body == nil {
		return codec.Report{}, fmt.Errorf("transport: empty report response for round %d", round)
	}
	return codec.DecodeReport(body)
}

// VerifyLedger downloads the coordinator's audit chain and verifies it —
// hash links and executor signatures — returning the block count. This is
// the worker-side tamper check of §4.5 over the wire.
func (c *Client) VerifyLedger(ctx context.Context) (blocks int, err error) {
	body, err := c.get(ctx, "/v1/ledger")
	if err != nil {
		return 0, fmt.Errorf("transport: fetching ledger: %w", err)
	}
	if body == nil {
		return 0, fmt.Errorf("transport: empty ledger response")
	}
	export, err := codec.DecodeLedger(body)
	if err != nil {
		return 0, err
	}
	return chain.VerifyFrom(bytes.NewReader(export))
}

// FetchLedgerFrom downloads the coordinator's chain export suffix starting
// at block index from (0 = the whole chain). The returned bytes are a
// chain binary export — full for from 0, partial otherwise — ready for
// chain.StreamBinary; a partial export past the chain tip carries zero
// blocks. Incremental fetches let an auditor tail a live chain paying for
// new blocks only.
func (c *Client) FetchLedgerFrom(ctx context.Context, from int) ([]byte, error) {
	if from < 0 {
		return nil, fmt.Errorf("transport: FetchLedgerFrom requires a non-negative index, got %d", from)
	}
	path := "/v1/ledger"
	if from > 0 {
		path += "?from=" + strconv.Itoa(from)
	}
	body, err := c.get(ctx, path)
	if err != nil {
		return nil, fmt.Errorf("transport: fetching ledger from %d: %w", from, err)
	}
	if body == nil {
		return nil, fmt.Errorf("transport: empty ledger response")
	}
	return codec.DecodeLedger(body)
}

// FetchLedger downloads a coordinator's chain export without joining the
// federation: no hello handshake, no worker slot — the shape a read-only
// analytics consumer (fifl-score, dashboards) needs. from and the response
// budget behave as in FetchLedgerFrom; maxBytes <= 0 uses the default
// 1 GiB ledger budget. The export is returned unverified; stream it with
// chain.StreamBinary (checking continuity) or chain.VerifyFrom.
func FetchLedger(ctx context.Context, baseURL string, from int, maxBytes int64) ([]byte, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("transport: FetchLedger requires an absolute coordinator URL, got %q", baseURL)
	}
	if from < 0 {
		return nil, fmt.Errorf("transport: FetchLedger requires a non-negative index, got %d", from)
	}
	if maxBytes <= 0 {
		maxBytes = maxLedgerBytes
	}
	path := baseURL + "/v1/ledger"
	if from > 0 {
		path += "?from=" + strconv.Itoa(from)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("transport: fetching ledger: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBytes+1))
	if err != nil {
		return nil, fmt.Errorf("transport: reading ledger response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return nil, fmt.Errorf("GET /v1/ledger: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	if int64(len(body)) > maxBytes {
		return nil, fmt.Errorf("GET /v1/ledger: response exceeds the %d-byte limit", maxBytes)
	}
	return codec.DecodeLedger(body)
}

// maxMetricsBytes bounds a /v1/metrics exposition download: even a large
// federation's registry is a few MiB of text.
const maxMetricsBytes = 64 << 20

// FetchMetrics downloads a coordinator's Prometheus text exposition from
// /v1/metrics — the read-only companion to FetchLedger for analytics
// consumers that overlay transport observations (upload latency) onto
// ledger-derived signals.
func FetchMetrics(ctx context.Context, baseURL string) ([]byte, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("transport: FetchMetrics requires an absolute coordinator URL, got %q", baseURL)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("transport: fetching metrics: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxMetricsBytes+1))
	if err != nil {
		return nil, fmt.Errorf("transport: reading metrics response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return nil, fmt.Errorf("GET /v1/metrics: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	if int64(len(body)) > maxMetricsBytes {
		return nil, fmt.Errorf("GET /v1/metrics: response exceeds the %d-byte limit", maxMetricsBytes)
	}
	return body, nil
}

// get issues a GET with retries. It returns nil bytes for 204 No Content.
func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	return c.do(ctx, http.MethodGet, path, nil)
}

// post issues a POST with retries.
func (c *Client) post(ctx context.Context, path string, body []byte) ([]byte, error) {
	return c.do(ctx, http.MethodPost, path, body)
}

// endpointOf strips the query from a request path, yielding the metric
// label.
func endpointOf(path string) string {
	if i := strings.IndexByte(path, '?'); i >= 0 {
		return path[:i]
	}
	return path
}

// responseLimit returns the byte budget for one response body on the
// given endpoint.
func (c *Client) responseLimit(endpoint string) int64 {
	if c.cfg.MaxResponseBytes > 0 {
		return c.cfg.MaxResponseBytes
	}
	if endpoint == "/v1/ledger" {
		return maxLedgerBytes
	}
	return maxUploadBytes
}

// retryWait returns the clamped exponential backoff before retry attempt
// (attempt >= 1): base << (attempt-1), with the shift bounded and the
// result capped at maxRetryWait so large attempt counts cannot overflow
// into a negative or absurd sleep.
func retryWait(base time.Duration, attempt int) time.Duration {
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	wait := base << shift
	if wait <= 0 || wait > maxRetryWait {
		return maxRetryWait
	}
	return wait
}

// do issues one HTTP request with exponential-backoff retries on transport
// errors and 5xx responses. 4xx responses are terminal: the coordinator
// rejected the request and a retransmission cannot fix it. A response body
// larger than the endpoint's budget is also terminal — the body is read
// with a limit+1 over-read probe so truncation is detected explicitly
// instead of surfacing as a downstream CRC failure.
func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	endpoint := endpointOf(path)
	limit := c.responseLimit(endpoint)
	reqs, errsC, lat := c.cm.reqs[endpoint], c.cm.errs[endpoint], c.cm.lat[endpoint]
	if reqs == nil {
		reqs = c.cm.other
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.RetryAttempts; attempt++ {
		if attempt > 0 {
			c.cm.retries.Inc()
			select {
			case <-time.After(retryWait(c.cfg.RetryBackoff, attempt)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/octet-stream")
		}
		start := time.Now()
		resp, err := c.http.Do(req)
		reqs.Inc()
		if err != nil {
			if errsC != nil {
				errsC.Inc()
			}
			lastErr = err
			continue
		}
		out, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
		resp.Body.Close()
		if lat != nil {
			lat.ObserveSince(start)
		}
		c.cm.bytesOut.Add(int64(len(body)))
		switch {
		case resp.StatusCode == http.StatusNoContent:
			return nil, nil
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			if err != nil {
				lastErr = err
				continue
			}
			if int64(len(out)) > limit {
				// Terminal: a bigger response will not fit on retry either.
				return nil, fmt.Errorf("%s %s: response exceeds the %d-byte limit", method, endpoint, limit)
			}
			c.cm.bytesIn.Add(int64(len(out)))
			return out, nil
		case resp.StatusCode >= 500:
			if errsC != nil {
				errsC.Inc()
			}
			lastErr = fmt.Errorf("%s %s: %s", method, path, resp.Status)
			continue
		default:
			if errsC != nil {
				errsC.Inc()
			}
			return nil, fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(out))
		}
	}
	return nil, fmt.Errorf("%s %s failed after %d attempts: %w", method, path, c.cfg.RetryAttempts+1, lastErr)
}
