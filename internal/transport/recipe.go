package transport

import (
	"fmt"

	"fifl/internal/dataset"
	"fifl/internal/fl"
	"fifl/internal/nn"
	"fifl/internal/rng"
)

// Recipe is a deterministic federation specification every node can
// rebuild locally from the shared seed: the synthetic digits task, an MLP
// model, and an IID partition of the training data. Because the rng
// package derives child streams from (seed, label) pairs — not from
// consumption order — a worker process that rebuilds its slot from the
// same recipe produces bit-identical data, model and training trajectory
// to an in-process run, which is what makes the transport's loopback
// equivalence test (and multi-process demo) exact.
type Recipe struct {
	// Seed roots every stream; two nodes agree iff their seeds agree.
	Seed uint64
	// Workers is the federation size N.
	Workers int
	// SamplesPerWorker sizes each local dataset.
	SamplesPerWorker int
	// Local controls worker-side training; zero fields take defaults
	// (K=1, BatchSize=32, LR=0.05).
	Local fl.LocalConfig
	// Hidden is the MLP's hidden layout (nil = [16]).
	Hidden []int
}

// normalized fills defaults and validates.
func (r Recipe) normalized() (Recipe, error) {
	if r.Workers <= 0 {
		return r, fmt.Errorf("transport: Recipe.Workers must be positive, got %d", r.Workers)
	}
	if r.SamplesPerWorker <= 0 {
		return r, fmt.Errorf("transport: Recipe.SamplesPerWorker must be positive, got %d", r.SamplesPerWorker)
	}
	if r.Local.K == 0 {
		r.Local.K = 1
	}
	if r.Local.BatchSize == 0 {
		r.Local.BatchSize = 32
	}
	if r.Local.LR == 0 {
		r.Local.LR = 0.05
	}
	if r.Hidden == nil {
		r.Hidden = []int{16}
	}
	return r, nil
}

// Builder returns the shared model builder; every node must construct its
// replicas from it so shapes and initializations agree.
func (r Recipe) Builder() (nn.Builder, error) {
	r, err := r.normalized()
	if err != nil {
		return nil, err
	}
	return nn.NewMLP(r.Seed, 28*28, r.Hidden, 10), nil
}

// Worker rebuilds federation slot i: the full training set is regenerated
// and partitioned exactly as every other node does it, then slot i's part
// backs an honest worker with its own deterministic stream.
func (r Recipe) Worker(i int) (fl.Worker, error) {
	r, err := r.normalized()
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= r.Workers {
		return nil, fmt.Errorf("transport: Recipe.Worker(%d) outside federation of %d", i, r.Workers)
	}
	src := rng.New(r.Seed)
	train := dataset.SynthDigits(src.Split("train"), r.Workers*r.SamplesPerWorker)
	parts := train.PartitionIID(src.Split("split"), r.Workers)
	build, err := r.Builder()
	if err != nil {
		return nil, err
	}
	return fl.NewHonestWorker(i, parts[i], build, r.Local, src), nil
}

// AllWorkers rebuilds every federation slot (the in-process reference
// configuration the loopback tests compare against).
func (r Recipe) AllWorkers() ([]fl.Worker, error) {
	r, err := r.normalized()
	if err != nil {
		return nil, err
	}
	out := make([]fl.Worker, r.Workers)
	for i := range out {
		if out[i], err = r.Worker(i); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TestSet generates the shared held-out evaluation set.
func (r Recipe) TestSet(n int) (*dataset.Dataset, error) {
	r, err := r.normalized()
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("transport: Recipe.TestSet requires a positive size, got %d", n)
	}
	return dataset.SynthDigits(rng.New(r.Seed).Split("test"), n), nil
}
