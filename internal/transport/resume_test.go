package transport

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fifl/internal/core"
	"fifl/internal/fl"
	"fifl/internal/rng"
)

// TestHubCloseUnderConcurrentLongPolls is the -race regression for the
// waitModel close path: pollers blocked on an unreachable round read
// h.round when the hub closes, while a publisher is still mutating it.
// The old code read the field without the lock; the race detector flags
// that version of this test.
func TestHubCloseUnderConcurrentLongPolls(t *testing.T) {
	hub, err := NewHub(1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// after is unreachable, so only Close can end this poll.
			round, _, done, status := hub.waitModel(context.Background(), 1<<30, 10*time.Second)
			if status != waitNews || !done {
				t.Errorf("long poll ended without done: round=%d done=%v status=%d", round, done, status)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 200; r++ {
			hub.publish(r, []float64{float64(r)})
		}
		hub.Close()
	}()
	wg.Wait()
}

// TestHubRestore covers the checkpoint-resume seeding of a fresh hub:
// known workers are pre-registered, the restored round becomes the
// broadcast, the reconnection window admits next-round submissions, and a
// hub with history refuses to be rewritten.
func TestHubRestore(t *testing.T) {
	hub, err := NewHub(3)
	if err != nil {
		t.Fatal(err)
	}
	params := []float64{1, 2, 3, 4}
	// Worker 2 never registered before the checkpoint (samples 0).
	if err := hub.Restore(2, params, []int{10, 20, 0}); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if round, p, done := hub.model(); round != 2 || done || len(p) != 4 {
		t.Fatalf("restored broadcast = (%d, %v, %v)", round, p, done)
	}

	// The two known workers are registered; re-hello is idempotent, a
	// conflicting re-hello is not.
	if err := hub.hello(0, 10); err != nil {
		t.Fatalf("re-hello after restore: %v", err)
	}
	if err := hub.hello(0, 99); err == nil {
		t.Fatal("conflicting re-hello after restore accepted")
	}

	// WaitReady still waits for the never-seen worker…
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := hub.WaitReady(ctx); err == nil {
		t.Fatal("WaitReady returned with worker 2 still missing")
	}
	cancel()
	// …and unblocks once it arrives.
	if err := hub.hello(2, 30); err != nil {
		t.Fatal(err)
	}
	if err := hub.WaitReady(context.Background()); err != nil {
		t.Fatalf("WaitReady after full registration: %v", err)
	}

	// Current-round and next-round (reconnection window) submissions are
	// accepted; anything else is not.
	if _, err := hub.submit(2, 0, 10, make([]float64, 4)); err != nil {
		t.Fatalf("current-round submission after restore: %v", err)
	}
	if _, err := hub.submit(3, 1, 20, make([]float64, 4)); err != nil {
		t.Fatalf("reconnection-window submission: %v", err)
	}
	if _, err := hub.submit(4, 0, 10, make([]float64, 4)); err == nil {
		t.Fatal("submission two rounds ahead accepted")
	}
	if _, err := hub.submit(1, 0, 10, make([]float64, 4)); err == nil {
		t.Fatal("stale submission accepted")
	}

	// The early round-3 submission is already in the mailbox when the
	// engine re-publishes the round.
	hub.publish(3, params)
	if g := hub.await(3, 1); len(g) != 4 {
		t.Fatalf("await(3,1) after early submission returned %v", g)
	}

	// History cannot be rewritten.
	if err := hub.Restore(5, params, []int{10, 20, 30}); err == nil {
		t.Fatal("second Restore accepted")
	}

	// Shape and state errors.
	if h2, _ := NewHub(2); true {
		if err := h2.Restore(0, params, []int{1}); err == nil {
			t.Fatal("Restore with wrong sample-count length accepted")
		}
		if err := h2.Restore(0, params, []int{-1, 1}); err == nil {
			t.Fatal("Restore with negative samples accepted")
		}
		if err := h2.Restore(-5, params, []int{1, 1}); err == nil {
			t.Fatal("Restore with negative round accepted")
		}
		h2.publish(0, params)
		if err := h2.Restore(1, params, []int{1, 1}); err == nil {
			t.Fatal("Restore after a live publish accepted")
		}
	}
	if h3, _ := NewHub(1); true {
		h3.Close()
		if err := h3.Restore(0, params, []int{1}); err == nil {
			t.Fatal("Restore on a closed hub accepted")
		}
	}

	// An empty-run checkpoint (no round yet) only seeds registrations:
	// submissions stay rejected until a real broadcast.
	h4, _ := NewHub(2)
	if err := h4.Restore(noRound, nil, []int{5, 5}); err != nil {
		t.Fatalf("empty-state Restore: %v", err)
	}
	if err := h4.WaitReady(context.Background()); err != nil {
		t.Fatalf("WaitReady after empty-state Restore: %v", err)
	}
	if _, err := h4.submit(0, 0, 5, make([]float64, 4)); err == nil {
		t.Fatal("submission before any broadcast accepted after empty-state Restore")
	}
}

// TestLoopbackKillAndResume is the transport half of the durability
// guarantee: a networked 6-round federation whose coordinator "dies"
// between rounds 3 and 4 — its server torn down, workers' requests
// failing — and restarts from the checkpoint finishes bit-identically
// (reputations, cumulative rewards, model params, ledger bytes) to an
// uninterrupted networked run. The workers ride through the outage on
// their HTTP retry schedule and long-poll straight into the resumed
// round; they are never restarted and never told anything happened.
func TestLoopbackKillAndResume(t *testing.T) {
	const (
		nWorkers = 3
		nRounds  = 6
		killAt   = 3 // rounds completed before the crash
		deadline = 3 * time.Second
	)
	recipe := Recipe{Seed: 7, Workers: nWorkers, SamplesPerWorker: 60}
	engCfg := fl.Config{Servers: 2, GlobalLR: 0.05}
	initialServers := []int{0, 1}

	newServer := func() (*Server, *core.Coordinator, *Hub) {
		t.Helper()
		build, err := recipe.Builder()
		if err != nil {
			t.Fatal(err)
		}
		hub, err := NewHub(nWorkers)
		if err != nil {
			t.Fatal(err)
		}
		engine, err := fl.NewEngine(engCfg, build, hub.Workers(), rng.New(recipe.Seed).Split("netfed"),
			fl.WithWorkerTimeout(deadline))
		if err != nil {
			t.Fatal(err)
		}
		coord, err := core.NewCoordinator(coordConfig(), engine, initialServers)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(coord, hub)
		if err != nil {
			t.Fatal(err)
		}
		return srv, coord, hub
	}

	runClients := func(ctx context.Context, baseURL string) (*sync.WaitGroup, []int, []error) {
		t.Helper()
		var wg sync.WaitGroup
		trained := make([]int, nWorkers)
		errs := make([]error, nWorkers)
		for i := 0; i < nWorkers; i++ {
			w, err := recipe.Worker(i)
			if err != nil {
				t.Fatal(err)
			}
			c, err := DialWorker(ctx, ClientConfig{
				BaseURL:  baseURL,
				Worker:   w,
				PollWait: 300 * time.Millisecond,
				// Enough retry budget to ride through the outage window.
				RetryAttempts: 50,
				RetryBackoff:  10 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("dialing worker %d: %v", i, err)
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				trained[i], errs[i] = c.Run(ctx)
			}(i)
		}
		return &wg, trained, errs
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Reference arm: the same federation, never interrupted.
	refSrv, refCoord, _ := newServer()
	refTS := httptest.NewServer(refSrv.Handler())
	defer refTS.Close()
	defer refSrv.Close()
	refWG, refTrained, refErrs := runClients(ctx, refTS.URL)
	if err := refSrv.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nRounds; r++ {
		if _, err := refSrv.RunRound(ctx, r); err != nil {
			t.Fatalf("reference round %d: %v", r, err)
		}
	}
	refSrv.MarkDone()
	refWG.Wait()
	for i, err := range refErrs {
		if err != nil {
			t.Fatalf("reference client %d: %v", i, err)
		}
	}

	// Interrupted arm. The clients talk to a stable URL behind which the
	// coordinator can be replaced — the HTTP analogue of a process that is
	// SIGKILLed and restarted on the same address.
	srv1, coord1, _ := newServer()
	defer srv1.Close()
	var handlerMu sync.Mutex
	live := srv1.Handler()
	outage := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "coordinator down", http.StatusServiceUnavailable)
	})
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handlerMu.Lock()
		h := live
		handlerMu.Unlock()
		h.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	wg, trained, errs := runClients(ctx, proxy.URL)
	if err := srv1.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < killAt; r++ {
		if _, err := srv1.RunRound(ctx, r); err != nil {
			t.Fatalf("pre-crash round %d: %v", r, err)
		}
	}

	// Crash between rounds: checkpoint what a -checkpoint-every run would
	// have on disk, then take the coordinator away mid-federation.
	snap, err := coord1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	handlerMu.Lock()
	live = outage
	handlerMu.Unlock()
	// Let in-flight long polls drain on the dead server before rebuilding,
	// so every client is in its retry loop against 503s.
	time.Sleep(500 * time.Millisecond)

	// Restart: fresh hub and engine from the shared recipe, coordinator
	// restored from the checkpoint, hub seeded so the known workers are
	// already registered and the restored model is the current broadcast.
	build2, err := recipe.Builder()
	if err != nil {
		t.Fatal(err)
	}
	hub2, err := NewHub(nWorkers)
	if err != nil {
		t.Fatal(err)
	}
	engine2, err := fl.NewEngine(engCfg, build2, hub2.Workers(), rng.New(recipe.Seed).Split("netfed"),
		fl.WithWorkerTimeout(deadline))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.RestoreCoordinatorSnapshot(snap, coordConfig(), engine2)
	if err != nil {
		t.Fatalf("restoring coordinator: %v", err)
	}
	srv2, err := NewServer(restored, hub2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if err := hub2.Restore(snap.NextRound-1, snap.Params, snap.Samples); err != nil {
		t.Fatalf("restoring hub: %v", err)
	}
	if err := srv2.WaitReady(ctx); err != nil {
		t.Fatalf("restarted coordinator not ready: %v", err)
	}
	handlerMu.Lock()
	live = srv2.Handler()
	handlerMu.Unlock()

	if restored.NextRound() != killAt {
		t.Fatalf("restored coordinator resumes at round %d, want %d", restored.NextRound(), killAt)
	}
	for r := restored.NextRound(); r < nRounds; r++ {
		if _, err := srv2.RunRound(ctx, r); err != nil {
			t.Fatalf("post-resume round %d: %v", r, err)
		}
	}
	srv2.MarkDone()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 0; i < nWorkers; i++ {
		if trained[i] != nRounds || refTrained[i] != nRounds {
			t.Fatalf("worker %d trained %d rounds (reference %d), want %d", i, trained[i], refTrained[i], nRounds)
		}
	}

	// Bit-identical final state across the crash.
	for i := 0; i < nWorkers; i++ {
		if math.Float64bits(refCoord.Rep.Reputation(i)) != math.Float64bits(restored.Rep.Reputation(i)) {
			t.Fatalf("worker %d reputation diverged: %v vs %v", i, restored.Rep.Reputation(i), refCoord.Rep.Reputation(i))
		}
	}
	refCum, gotCum := refCoord.CumulativeRewards(), restored.CumulativeRewards()
	for i := range refCum {
		if math.Float64bits(refCum[i]) != math.Float64bits(gotCum[i]) {
			t.Fatalf("worker %d cumulative reward diverged: %v vs %v", i, gotCum[i], refCum[i])
		}
	}
	refParams, gotParams := refCoord.Engine.Params(), restored.Engine.Params()
	for i := range refParams {
		if math.Float64bits(refParams[i]) != math.Float64bits(gotParams[i]) {
			t.Fatalf("global parameter %d diverged across the crash", i)
		}
	}
	var refLedger, gotLedger bytes.Buffer
	if err := refCoord.Ledger.WriteBinary(&refLedger); err != nil {
		t.Fatal(err)
	}
	if err := restored.Ledger.WriteBinary(&gotLedger); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refLedger.Bytes(), gotLedger.Bytes()) {
		t.Fatalf("ledger bytes diverged across the crash (%d vs %d bytes)", gotLedger.Len(), refLedger.Len())
	}
}
