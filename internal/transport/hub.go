// Package transport runs a FIFL federation across real processes: a
// coordinator HTTP server wrapping core.Coordinator, a worker client
// wrapping any fl.Worker, and the binary wire format of
// internal/transport/codec. It is stdlib-only (net/http).
//
// # Architecture
//
// The coordinator owns the fl.Engine, but its workers are remote stubs
// (Hub.Workers): a stub's LocalTrain publishes the round's global
// parameters to the hub and then blocks until the matching submission
// arrives over HTTP — so CollectGradientsContext's per-worker deadlines,
// seeded retries and quorum commit drive real network calls unchanged.
// Worker processes run the opposite side: poll the model, train locally,
// submit the gradient.
//
// # Failure mapping
//
// Transport failures surface through the PR-1 UploadStatus taxonomy and
// feed the Eq. 8–10 reputation events exactly like simulated ones:
//
//   - a submission that arrives before the engine's per-worker deadline —
//     with or without client-side HTTP retries — is StatusOK;
//   - a worker that crashes, partitions or submits malformed/corrupt
//     frames never completes its stub, which the deadline resolves to
//     StatusTimedOut — an uncertain event for the reputation module;
//   - the engine's fault injector still composes on top, so simulated
//     drops/retries/crashes (StatusDropped, StatusRetried, StatusCrashed)
//     can be layered over a real network.
package transport

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"fifl/internal/fl"
	"fifl/internal/gradvec"
)

// noRound marks "nothing published yet".
const noRound = -1

// submission is one accepted gradient upload.
type submission struct {
	grad    gradvec.Vector
	samples int
}

// pendingSub is one async submission queued for the next advance window,
// in arrival order.
type pendingSub struct {
	worker  int
	round   int // the model round the gradient trained against
	samples int
	grad    gradvec.Vector
}

// waitStatus classifies how a model long poll on the hub resolved.
type waitStatus int

const (
	// waitNews: a newer round (or the terminal done state) is available.
	waitNews waitStatus = iota
	// waitTimeout: the server-side poll window elapsed with nothing new —
	// the client is alive and gets a 204 to re-poll on.
	waitTimeout
	// waitCancelled: the client went away (request context cancelled);
	// nothing should be written to the dead connection.
	waitCancelled
)

// Hub is the rendezvous between the coordinator's engine (which runs
// remote-worker stubs) and the HTTP handlers (which receive the real
// submissions). It is safe for concurrent use.
type Hub struct {
	mu sync.Mutex

	n         int
	samples   []int // registered at hello; the engine's NumSamples source
	helloed   []bool
	inactive  []bool // departed/banned IDs: submissions refused, hello refused
	readyLeft int
	readyDone bool
	readyCh   chan struct{} // closed when every expected worker said hello

	round    int       // latest published round (noRound before the first)
	params   []float64 // latest published global parameters
	done     bool
	modelCh  chan struct{} // closed and replaced on every publish/done
	closedCh chan struct{} // closed by Close; unblocks every stub

	subs  map[int]map[int]submission // round -> worker -> submission
	wait  map[[2]int]chan struct{}   // (round, worker) -> arrival signal
	pubAt map[int]time.Time          // round -> broadcast wall-clock stamp

	// onUpload, when set, observes each fresh accepted submission with the
	// wall-clock seconds since its round's broadcast. Observability only:
	// nothing downstream of the pipeline ever reads these timings.
	onUpload func(worker int, seconds float64)

	// Async mode (EnableAsync): submissions for any broadcast round are
	// accepted at any time and queued for the next advance window instead
	// of waking a per-round stub.
	asyncBound int           // staleness bound; negative = synchronous mode
	pending    []pendingSub  // queued async submissions, arrival order
	pendingCh  chan struct{} // closed and replaced when the queue grows
}

// NewHub creates the coordinator-side rendezvous for a federation of n
// workers.
func NewHub(n int) (*Hub, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: NewHub requires a positive federation size, got %d", n)
	}
	return &Hub{
		n:          n,
		samples:    make([]int, n),
		helloed:    make([]bool, n),
		inactive:   make([]bool, n),
		readyLeft:  n,
		readyCh:    make(chan struct{}),
		round:      noRound,
		modelCh:    make(chan struct{}),
		closedCh:   make(chan struct{}),
		subs:       make(map[int]map[int]submission),
		wait:       make(map[[2]int]chan struct{}),
		pubAt:      make(map[int]time.Time),
		asyncBound: -1,
		pendingCh:  make(chan struct{}),
	}, nil
}

// EnableAsync switches the hub into asynchronous mode with the given
// staleness bound: submissions tagged with any already-broadcast round
// are accepted whenever they arrive and queued for the next advance
// window (takePending) instead of rendezvousing with a per-round stub.
// Submission mailboxes are retained for maxStaleness+1 extra rounds so
// idempotent-replay detection spans the whole staleness window. Must be
// called before any traffic.
func (h *Hub) EnableAsync(maxStaleness int) error {
	if maxStaleness < 0 {
		return fmt.Errorf("transport: EnableAsync requires a non-negative staleness bound, got %d", maxStaleness)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.round != noRound || h.done {
		return fmt.Errorf("transport: EnableAsync on a hub that already published round %d", h.round)
	}
	h.asyncBound = maxStaleness
	return nil
}

// SetUploadObserver installs a callback invoked (under the hub lock) for
// every fresh accepted submission, with the wall-clock seconds elapsed
// since the submission's round was broadcast. Rounds broadcast before the
// observer's hub existed (restored checkpoints) are stamped at Restore.
// The timings are observability-only — they feed metrics, never
// decisions — so wall-clock nondeterminism cannot leak into the pipeline.
func (h *Hub) SetUploadObserver(fn func(worker int, seconds float64)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.onUpload = fn
}

// Workers returns the remote-worker stubs to build the coordinator's
// fl.Engine over, in federation order.
func (h *Hub) Workers() []fl.Worker {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]fl.Worker, h.n)
	for i := range out {
		out[i] = &remoteWorker{hub: h, id: i}
	}
	return out
}

// WorkersFor returns remote-worker stubs for the given stable worker IDs,
// in slot order — the cohort shape a federation restored mid-churn needs,
// where the active cohort is a subset of the IDs the hub covers.
func (h *Hub) WorkersFor(ids []int) ([]fl.Worker, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]fl.Worker, len(ids))
	for slot, id := range ids {
		if id < 0 || id >= h.n {
			return nil, fmt.Errorf("transport: WorkersFor with worker %d, hub covers %d IDs", id, h.n)
		}
		out[slot] = &remoteWorker{hub: h, id: id}
	}
	return out, nil
}

// size returns the number of worker IDs the hub covers (grows on join).
func (h *Hub) size() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// maybeReady closes the readiness gate exactly once, when the last
// expected worker registers (or stops being expected).
func (h *Hub) maybeReady() {
	if h.readyLeft == 0 && !h.readyDone {
		h.readyDone = true
		close(h.readyCh)
	}
}

// addWorker grows the hub for a newly admitted identity: id must be the
// next sequential ID (mirroring the registry's assignment), and the
// worker is registered immediately — a join handshake subsumes hello.
// Mid-round growth is safe: the round's stubs snapshot their IDs at
// engine build, and every per-ID array access takes the hub lock.
func (h *Hub) addWorker(id, samples int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if id != h.n {
		return fmt.Errorf("transport: addWorker with ID %d, next hub ID is %d", id, h.n)
	}
	if samples <= 0 {
		return fmt.Errorf("transport: addWorker with %d samples for worker %d", samples, id)
	}
	h.n++
	h.samples = append(h.samples, samples)
	h.helloed = append(h.helloed, true)
	h.inactive = append(h.inactive, false)
	return nil
}

// deactivate marks a departed or evicted identity: its submissions and
// hellos are refused until reactivate. Unregistered IDs stop counting
// toward readiness — a cohort member the checkpoint knows departed must
// not park WaitReady forever.
func (h *Hub) deactivate(id int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if id < 0 || id >= h.n {
		return fmt.Errorf("transport: deactivate worker %d, hub covers %d IDs", id, h.n)
	}
	if h.inactive[id] {
		return nil
	}
	h.inactive[id] = true
	if !h.helloed[id] {
		h.readyLeft--
		h.maybeReady()
	}
	return nil
}

// MarkInactive is deactivate for restore wiring: a federation rebuilt
// from a churned checkpoint marks every non-active identity before
// Restore, so readiness waits only on the cohort the checkpoint seats.
func (h *Hub) MarkInactive(id int) error { return h.deactivate(id) }

// reactivate re-admits a previously deactivated identity with its
// (possibly re-registered) dataset size.
func (h *Hub) reactivate(id, samples int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if id < 0 || id >= h.n {
		return fmt.Errorf("transport: reactivate worker %d, hub covers %d IDs", id, h.n)
	}
	if samples <= 0 {
		return fmt.Errorf("transport: reactivate worker %d with %d samples", id, samples)
	}
	if !h.inactive[id] {
		return fmt.Errorf("transport: reactivate worker %d, which is active", id)
	}
	h.inactive[id] = false
	if !h.helloed[id] {
		h.helloed[id] = true
	}
	h.samples[id] = samples
	return nil
}

// Close unblocks every waiting stub and poller. After Close the hub
// accepts no further submissions.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case <-h.closedCh:
	default:
		close(h.closedCh)
	}
}

// Restore seeds a fresh hub with checkpointed state so a restarted
// coordinator picks up a federation mid-flight: workers the checkpoint
// knew (samples > 0) are pre-registered — their hellos become idempotent
// re-registrations and WaitReady does not block on them — and, when round
// is non-negative, (round, params) becomes the current broadcast, so
// reconnecting workers long-polling after an earlier round receive the
// restored model and ride straight into the resumed round. It must be
// called before any live traffic (hello/publish); a hub that has already
// published refuses to rewrite history.
func (h *Hub) Restore(round int, params []float64, samples []int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case <-h.closedCh:
		return fmt.Errorf("transport: Restore on a closed hub")
	default:
	}
	if h.done || h.round != noRound {
		return fmt.Errorf("transport: Restore on a hub that already published round %d", h.round)
	}
	if round < noRound {
		return fmt.Errorf("transport: Restore with negative round %d", round)
	}
	if len(samples) != h.n {
		return fmt.Errorf("transport: Restore with %d sample counts for %d workers", len(samples), h.n)
	}
	for id, s := range samples {
		if s < 0 {
			return fmt.Errorf("transport: Restore with negative sample count for worker %d", id)
		}
		if s > 0 && h.helloed[id] && h.samples[id] != s {
			return fmt.Errorf("transport: worker %d already registered with %d samples, checkpoint says %d",
				id, h.samples[id], s)
		}
	}
	for id, s := range samples {
		if s > 0 && !h.helloed[id] {
			h.helloed[id] = true
			h.samples[id] = s
			h.readyLeft--
		}
	}
	h.maybeReady()
	if round >= 0 {
		h.round = round
		h.params = append([]float64(nil), params...)
		h.pubAt[round] = time.Now()
		close(h.modelCh)
		h.modelCh = make(chan struct{})
	}
	return nil
}

// hello registers worker id with its dataset size. Re-registration with
// the same size is idempotent (a restarted worker saying hello again).
func (h *Hub) hello(id, samples int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if id < 0 || id >= h.n {
		return fmt.Errorf("transport: hello from worker %d, federation has %d workers", id, h.n)
	}
	if samples <= 0 {
		return fmt.Errorf("transport: hello from worker %d declares %d samples", id, samples)
	}
	if h.inactive[id] {
		return fmt.Errorf("transport: worker %d has left the federation; rejoin via /v1/join", id)
	}
	if h.helloed[id] {
		if h.samples[id] != samples {
			return fmt.Errorf("transport: worker %d re-registered with %d samples, was %d", id, samples, h.samples[id])
		}
		return nil
	}
	h.helloed[id] = true
	h.samples[id] = samples
	h.readyLeft--
	h.maybeReady()
	return nil
}

// WaitReady blocks until every expected worker has said hello.
func (h *Hub) WaitReady(ctx context.Context) error {
	select {
	case <-h.readyCh:
		return nil
	case <-h.closedCh:
		return fmt.Errorf("transport: hub closed while waiting for workers")
	case <-ctx.Done():
		return fmt.Errorf("transport: waiting for workers: %w", ctx.Err())
	}
}

// numSamples returns worker id's registered dataset size (0 before hello).
func (h *Hub) numSamples(id int) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples[id]
}

// publish makes (round, params) the current model broadcast. Stubs call it
// concurrently at round fan-out with identical arguments; only the first
// call per round takes effect.
func (h *Hub) publish(round int, params []float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if round <= h.round || h.done {
		return
	}
	h.round = round
	h.params = append([]float64(nil), params...)
	h.pubAt[round] = time.Now()
	// Drop mailboxes older than the previous round. The previous round's
	// submissions are retained so a client that lost a 204 can retry its
	// upload across the round boundary and still be recognized as an
	// idempotent replay. Async mode keeps the whole staleness window (plus
	// one over-bound round) so replay detection covers every submission
	// the next advance could still fold.
	keepFrom := round - 1
	if h.asyncBound >= 0 {
		keepFrom = round - h.asyncBound - 2
	}
	for r := range h.subs {
		if r < keepFrom {
			delete(h.subs, r)
		}
	}
	for r := range h.pubAt {
		if r < keepFrom {
			delete(h.pubAt, r)
		}
	}
	close(h.modelCh)
	h.modelCh = make(chan struct{})
}

// markDone publishes the terminal "federation finished" state.
func (h *Hub) markDone() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done {
		return
	}
	h.done = true
	close(h.modelCh)
	h.modelCh = make(chan struct{})
}

// model returns the current broadcast state.
func (h *Hub) model() (round int, params []float64, done bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.round, h.params, h.done
}

// waitModel blocks until a round newer than `after` is published (or the
// federation finishes), up to maxWait — the server side of the client's
// long poll. The status distinguishes the two empty-handed outcomes:
// waitTimeout means the poll window elapsed and the live client should
// get a 204 to re-poll on; waitCancelled means the client's request
// context died and nothing can usefully be written back.
func (h *Hub) waitModel(ctx context.Context, after int, maxWait time.Duration) (round int, params []float64, done bool, status waitStatus) {
	deadline := time.NewTimer(maxWait)
	defer deadline.Stop()
	for {
		h.mu.Lock()
		if h.done {
			r := h.round
			h.mu.Unlock()
			return r, nil, true, waitNews
		}
		if h.round > after {
			r, p := h.round, h.params
			h.mu.Unlock()
			return r, p, false, waitNews
		}
		ch := h.modelCh
		h.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			return 0, nil, false, waitTimeout
		case <-h.closedCh:
			// Re-acquire the lock for the round read: a publish can be
			// mutating h.round concurrently with the close.
			h.mu.Lock()
			r := h.round
			h.mu.Unlock()
			return r, nil, true, waitNews
		case <-ctx.Done():
			return 0, nil, false, waitCancelled
		}
	}
}

// submit records worker id's gradient for the given round and wakes the
// stub waiting on it. Stale, conflicting, out-of-range and inconsistent
// submissions are rejected — a rejected upload simply never arrives, which
// the engine's deadline resolves to StatusTimedOut.
//
// Submit is idempotent: a re-submission byte-identical in (round, worker,
// samples, grad) to one already recorded returns fresh == false and no
// error, even after the round has advanced. This is what makes a client
// retry after a lost 204 harmless — the engine already accepted the
// original, so the replay must not fail the round (or count as traffic).
func (h *Hub) submit(round, id, samples int, grad gradvec.Vector) (fresh bool, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case <-h.closedCh:
		return false, fmt.Errorf("transport: hub closed")
	default:
	}
	if id < 0 || id >= h.n {
		return false, fmt.Errorf("transport: submission from worker %d, federation has %d workers", id, h.n)
	}
	if !h.helloed[id] {
		return false, fmt.Errorf("transport: worker %d submitted before hello", id)
	}
	if h.inactive[id] {
		return false, fmt.Errorf("transport: worker %d has left the federation; rejoin via /v1/join", id)
	}
	if prev, dup := h.subs[round][id]; dup {
		if prev.samples == samples && gradBitsEqual(prev.grad, grad) {
			return false, nil // idempotent replay of an accepted upload
		}
		return false, fmt.Errorf("transport: conflicting duplicate submission from worker %d for round %d", id, round)
	}
	// The current round is always accepted; one round ahead is the
	// reconnection window: a worker that trained against the broadcast of
	// round r+1 just before the coordinator crashed can deliver its upload
	// to the restarted coordinator before the engine re-publishes that
	// round — the re-broadcast is deterministic, so the gradient is the one
	// the round will want. Before any broadcast at all (noRound) nothing is
	// accepted. Async mode is the any-time submit path: every
	// already-broadcast round is accepted whenever its upload lands — the
	// advance window prices the staleness (or rejects it past the bound)
	// instead of the door.
	if h.round == noRound {
		return false, fmt.Errorf("transport: submission for round %d before any broadcast", round)
	}
	if h.asyncBound >= 0 {
		if round < 0 || round > h.round {
			return false, fmt.Errorf("transport: async submission for round %d, broadcasts reach round %d", round, h.round)
		}
	} else if round != h.round && round != h.round+1 {
		return false, fmt.Errorf("transport: submission for round %d, current round is %d", round, h.round)
	}
	if samples != h.samples[id] {
		return false, fmt.Errorf("transport: worker %d submitted %d samples, registered %d", id, samples, h.samples[id])
	}
	if len(grad) != len(h.params) {
		return false, fmt.Errorf("transport: worker %d submitted a %d-dim gradient, model has %d", id, len(grad), len(h.params))
	}
	if h.subs[round] == nil {
		h.subs[round] = make(map[int]submission)
	}
	h.subs[round][id] = submission{grad: grad, samples: samples}
	if h.onUpload != nil {
		if at, stamped := h.pubAt[round]; stamped {
			h.onUpload(id, time.Since(at).Seconds())
		}
	}
	if h.asyncBound >= 0 {
		h.pending = append(h.pending, pendingSub{worker: id, round: round, samples: samples, grad: grad})
		close(h.pendingCh)
		h.pendingCh = make(chan struct{})
		return true, nil
	}
	key := [2]int{round, id}
	if ch, exists := h.wait[key]; exists {
		close(ch)
		delete(h.wait, key)
	}
	return true, nil
}

// takePending blocks until at least min async submissions are queued, the
// optional maxWait elapses (0 = count trigger only), the hub closes, or
// ctx is cancelled, then drains and returns the queue in arrival order —
// one advance window's intake. A time-triggered return can carry fewer
// than min submissions (including none).
func (h *Hub) takePending(ctx context.Context, min int, maxWait time.Duration) ([]pendingSub, error) {
	var deadline <-chan time.Time
	if maxWait > 0 {
		timer := time.NewTimer(maxWait)
		defer timer.Stop()
		deadline = timer.C
	}
	for {
		h.mu.Lock()
		if len(h.pending) >= min {
			out := h.pending
			h.pending = nil
			h.mu.Unlock()
			return out, nil
		}
		ch := h.pendingCh
		h.mu.Unlock()
		select {
		case <-ch:
		case <-deadline:
			h.mu.Lock()
			out := h.pending
			h.pending = nil
			h.mu.Unlock()
			return out, nil
		case <-h.closedCh:
			return nil, fmt.Errorf("transport: hub closed while waiting for async submissions")
		case <-ctx.Done():
			return nil, fmt.Errorf("transport: waiting for async submissions: %w", ctx.Err())
		}
	}
}

// peekPending returns a copy of the queued async submissions without
// draining them — checkpoint capture must not consume the queue.
func (h *Hub) peekPending() []pendingSub {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]pendingSub(nil), h.pending...)
}

// gradBitsEqual reports bit-exact equality of two gradient vectors — the
// identity test for idempotent replays (codec frames cannot carry NaN, so
// bit comparison is exact and reflexive here).
func gradBitsEqual(a, b gradvec.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// await blocks until worker id's submission for the round arrives and
// returns its gradient, or nil if the hub closes first. The engine's
// per-worker deadline bounds the wait: a stub abandoned at the deadline
// keeps blocking harmlessly until arrival or Close.
func (h *Hub) await(round, id int) gradvec.Vector {
	h.mu.Lock()
	if sub, arrived := h.subs[round][id]; arrived {
		h.mu.Unlock()
		return sub.grad
	}
	key := [2]int{round, id}
	ch, exists := h.wait[key]
	if !exists {
		ch = make(chan struct{})
		h.wait[key] = ch
	}
	h.mu.Unlock()
	select {
	case <-ch:
	case <-h.closedCh:
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if sub, arrived := h.subs[round][id]; arrived {
		return sub.grad
	}
	return nil
}

// remoteWorker is the coordinator-side stub standing in for one networked
// worker. LocalTrain publishes the round and waits for the real upload;
// the engine's fault-tolerant runtime supplies deadlines and statuses.
type remoteWorker struct {
	hub *Hub
	id  int
}

// ID returns the worker's federation index.
func (w *remoteWorker) ID() int { return w.id }

// NumSamples returns the dataset size the worker registered at hello.
func (w *remoteWorker) NumSamples() int { return w.hub.numSamples(w.id) }

// LocalTrain publishes the global parameters for the round (idempotently —
// every stub publishes the identical snapshot) and blocks until the
// worker's submission arrives or the hub closes.
func (w *remoteWorker) LocalTrain(round int, global []float64) gradvec.Vector {
	w.hub.publish(round, global)
	return w.hub.await(round, w.id)
}
