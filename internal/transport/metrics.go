package transport

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"fifl/internal/metrics"
)

// serverMetrics holds the coordinator endpoint's pre-resolved instruments:
// per-endpoint request counts and latencies, frame bytes in both
// directions, per-worker upload/model byte totals (the wire-accounting
// cross-check), long-poll occupancy and codec throughput. Byte and request
// counters are deterministic for a fixed run; latency histograms are
// wall-clock and observability-only.
type serverMetrics struct {
	reg *metrics.Registry

	bytesIn      *metrics.Counter
	bytesOut     *metrics.Counter
	longpoll     *metrics.Gauge
	pollTimeouts *metrics.Counter
	pollCancels  *metrics.Counter
	replays      *metrics.Counter

	decodeSec   *metrics.Histogram
	encodeSec   *metrics.Histogram
	decodeBytes *metrics.Counter
	encodeBytes *metrics.Counter

	// Dense-equivalent vs actual wire bytes for the compressible payloads
	// (gradients in, model parameters out): the pair quantifies what the
	// negotiated compression modes save. Equal totals mean dense frames.
	denseBytesIn  *metrics.Counter
	wireBytesIn   *metrics.Counter
	denseBytesOut *metrics.Counter
	wireBytesOut  *metrics.Counter

	// pwMu guards the per-worker instrument slices below: elastic
	// membership grows them between rounds while handlers read them
	// concurrently. Use the worker* accessors, never index directly.
	pwMu        sync.Mutex
	uploadBytes []*metrics.Counter // per worker; mirrors Server.upBytes
	modelBytes  []*metrics.Counter // per worker; mirrors Server.downBytes

	// Per-worker upload latency: seconds between a round's model broadcast
	// and the worker's fresh accepted submission, as a sum + count pair so
	// scrapers (and fifl-score) can recover the mean. Wall-clock,
	// observability-only.
	latencySum []*metrics.Gauge
	latencyN   []*metrics.Counter
}

// newServerMetrics resolves the server's instrument set for an n-worker
// federation.
func newServerMetrics(r *metrics.Registry, n int) *serverMetrics {
	r.Help("fifl_http_requests_total", "HTTP requests served, by endpoint.")
	r.Help("fifl_http_request_errors_total", "HTTP responses with status >= 400, by endpoint.")
	r.Help("fifl_http_request_seconds", "HTTP request latency by endpoint (wall-clock, observability-only).")
	r.Help("fifl_http_frame_bytes_total", "Frame bytes moved over HTTP, by direction.")
	r.Help("fifl_http_longpoll_active", "Model long polls currently parked on the server.")
	r.Help("fifl_http_longpoll_empty_total", "Model long polls that resolved without news, by reason: 'timeout' (poll window elapsed, 204 sent) vs 'cancel' (client went away, nothing written).")
	r.Help("fifl_codec_encode_seconds", "Wire-codec encode latency (wall-clock, observability-only).")
	r.Help("fifl_codec_decode_seconds", "Wire-codec decode latency (wall-clock, observability-only).")
	r.Help("fifl_transport_upload_bytes_total", "Upload frame bytes accepted, by worker (matches Server.WorkerTraffic).")
	r.Help("fifl_transport_model_bytes_total", "Model frame bytes served, by worker (matches Server.WorkerTraffic).")
	r.Help("fifl_codec_dense_bytes_total", "Dense float64 equivalent of the compressible payloads moved, by direction.")
	r.Help("fifl_codec_wire_bytes_total", "Actual wire bytes of the compressible payloads moved, by direction.")
	r.Help("fifl_transport_upload_latency_seconds_total", "Total seconds between model broadcast and fresh accepted upload, by worker (wall-clock, observability-only).")
	r.Help("fifl_transport_upload_latency_uploads_total", "Fresh accepted uploads with an observed broadcast-to-submit latency, by worker.")
	sm := &serverMetrics{
		reg:          r,
		bytesIn:      r.Counter("fifl_http_frame_bytes_total", "direction", "in"),
		bytesOut:     r.Counter("fifl_http_frame_bytes_total", "direction", "out"),
		longpoll:     r.Gauge("fifl_http_longpoll_active"),
		pollTimeouts: r.Counter("fifl_http_longpoll_empty_total", "reason", "timeout"),
		pollCancels:  r.Counter("fifl_http_longpoll_empty_total", "reason", "cancel"),
		replays:      r.Counter("fifl_transport_submit_replays_total"),
		decodeSec:    r.Histogram("fifl_codec_decode_seconds", metrics.DefBuckets),
		encodeSec:    r.Histogram("fifl_codec_encode_seconds", metrics.DefBuckets),
		decodeBytes:  r.Counter("fifl_codec_decode_bytes_total"),
		encodeBytes:  r.Counter("fifl_codec_encode_bytes_total"),

		denseBytesIn:  r.Counter("fifl_codec_dense_bytes_total", "direction", "in"),
		wireBytesIn:   r.Counter("fifl_codec_wire_bytes_total", "direction", "in"),
		denseBytesOut: r.Counter("fifl_codec_dense_bytes_total", "direction", "out"),
		wireBytesOut:  r.Counter("fifl_codec_wire_bytes_total", "direction", "out"),

		uploadBytes: make([]*metrics.Counter, n),
		modelBytes:  make([]*metrics.Counter, n),
		latencySum:  make([]*metrics.Gauge, n),
		latencyN:    make([]*metrics.Counter, n),
	}
	for i := 0; i < n; i++ {
		w := strconv.Itoa(i)
		sm.uploadBytes[i] = r.Counter("fifl_transport_upload_bytes_total", "worker", w)
		sm.modelBytes[i] = r.Counter("fifl_transport_model_bytes_total", "worker", w)
		sm.latencySum[i] = r.Gauge("fifl_transport_upload_latency_seconds_total", "worker", w)
		sm.latencyN[i] = r.Counter("fifl_transport_upload_latency_uploads_total", "worker", w)
	}
	return sm
}

// growTo extends the per-worker instrument slices to cover n workers —
// called when elastic membership admits identities past the federation's
// initial size.
func (sm *serverMetrics) growTo(n int) {
	sm.pwMu.Lock()
	defer sm.pwMu.Unlock()
	for i := len(sm.uploadBytes); i < n; i++ {
		w := strconv.Itoa(i)
		sm.uploadBytes = append(sm.uploadBytes, sm.reg.Counter("fifl_transport_upload_bytes_total", "worker", w))
		sm.modelBytes = append(sm.modelBytes, sm.reg.Counter("fifl_transport_model_bytes_total", "worker", w))
		sm.latencySum = append(sm.latencySum, sm.reg.Gauge("fifl_transport_upload_latency_seconds_total", "worker", w))
		sm.latencyN = append(sm.latencyN, sm.reg.Counter("fifl_transport_upload_latency_uploads_total", "worker", w))
	}
}

// workerUpload returns worker i's upload-bytes counter, or nil when i is
// outside the instrumented range.
func (sm *serverMetrics) workerUpload(i int) *metrics.Counter {
	sm.pwMu.Lock()
	defer sm.pwMu.Unlock()
	if i < 0 || i >= len(sm.uploadBytes) {
		return nil
	}
	return sm.uploadBytes[i]
}

// workerModel returns worker i's model-bytes counter, or nil when i is
// outside the instrumented range.
func (sm *serverMetrics) workerModel(i int) *metrics.Counter {
	sm.pwMu.Lock()
	defer sm.pwMu.Unlock()
	if i < 0 || i >= len(sm.modelBytes) {
		return nil
	}
	return sm.modelBytes[i]
}

// observeUploadLatency is the hub's upload observer: it charges one fresh
// accepted submission's broadcast-to-submit latency to the worker's
// sum/count pair. Called under the hub lock, so the pair moves together.
func (sm *serverMetrics) observeUploadLatency(worker int, seconds float64) {
	sm.pwMu.Lock()
	defer sm.pwMu.Unlock()
	if worker < 0 || worker >= len(sm.latencySum) {
		return
	}
	sm.latencySum[worker].Add(seconds)
	sm.latencyN[worker].Inc()
}

// observeEncode charges one codec encode to the throughput instruments.
func (sm *serverMetrics) observeEncode(start time.Time, frameLen int) {
	sm.encodeSec.ObserveSince(start)
	sm.encodeBytes.Add(int64(frameLen))
}

// observeDecode charges one codec decode to the throughput instruments.
func (sm *serverMetrics) observeDecode(start time.Time, frameLen int) {
	sm.decodeSec.ObserveSince(start)
	sm.decodeBytes.Add(int64(frameLen))
}

// countingWriter wraps a ResponseWriter to record the status code and the
// bytes written, for the instrumentation middleware.
type countingWriter struct {
	http.ResponseWriter
	status  int
	written int64
}

func (w *countingWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *countingWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.written += int64(n)
	return n, err
}

// instrument wraps a handler with per-endpoint request, error, latency and
// bytes-out accounting. Instruments are resolved once at wiring time.
func (sm *serverMetrics) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reqs := sm.reg.Counter("fifl_http_requests_total", "endpoint", endpoint)
	errs := sm.reg.Counter("fifl_http_request_errors_total", "endpoint", endpoint)
	lat := sm.reg.Histogram("fifl_http_request_seconds", metrics.DefBuckets, "endpoint", endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		cw := &countingWriter{ResponseWriter: w}
		h(cw, r)
		lat.ObserveSince(start)
		reqs.Inc()
		if cw.status >= http.StatusBadRequest {
			errs.Inc()
		}
		sm.bytesOut.Add(cw.written)
	}
}

// clientMetrics holds a worker client's pre-resolved instruments:
// per-endpoint request counts/errors/latencies, retry attempts, bytes in
// both directions and codec throughput.
type clientMetrics struct {
	reqs    map[string]*metrics.Counter
	errs    map[string]*metrics.Counter
	lat     map[string]*metrics.Histogram
	other   *metrics.Counter
	retries *metrics.Counter

	bytesIn  *metrics.Counter
	bytesOut *metrics.Counter

	encodeSec   *metrics.Histogram
	decodeSec   *metrics.Histogram
	encodeBytes *metrics.Counter
	decodeBytes *metrics.Counter
}

// clientEndpoints are the fixed paths a worker client speaks; resolving
// their instruments at dial time keeps do() allocation-free.
var clientEndpoints = []string{"/v1/round/submit", "/v1/model", "/v1/round/report", "/v1/ledger"}

// newClientMetrics resolves the client's instrument set.
func newClientMetrics(r *metrics.Registry) *clientMetrics {
	r.Help("fifl_client_requests_total", "HTTP requests issued by the worker client, by endpoint (retries included).")
	r.Help("fifl_client_retry_attempts_total", "HTTP retry attempts issued by the worker client.")
	cm := &clientMetrics{
		reqs:        make(map[string]*metrics.Counter, len(clientEndpoints)),
		errs:        make(map[string]*metrics.Counter, len(clientEndpoints)),
		lat:         make(map[string]*metrics.Histogram, len(clientEndpoints)),
		other:       r.Counter("fifl_client_requests_total", "endpoint", "other"),
		retries:     r.Counter("fifl_client_retry_attempts_total"),
		bytesIn:     r.Counter("fifl_client_bytes_total", "direction", "in"),
		bytesOut:    r.Counter("fifl_client_bytes_total", "direction", "out"),
		encodeSec:   r.Histogram("fifl_codec_encode_seconds", metrics.DefBuckets),
		decodeSec:   r.Histogram("fifl_codec_decode_seconds", metrics.DefBuckets),
		encodeBytes: r.Counter("fifl_codec_encode_bytes_total"),
		decodeBytes: r.Counter("fifl_codec_decode_bytes_total"),
	}
	for _, e := range clientEndpoints {
		cm.reqs[e] = r.Counter("fifl_client_requests_total", "endpoint", e)
		cm.errs[e] = r.Counter("fifl_client_request_errors_total", "endpoint", e)
		cm.lat[e] = r.Histogram("fifl_client_request_seconds", metrics.DefBuckets, "endpoint", e)
	}
	return cm
}
