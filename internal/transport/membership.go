package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"fifl/internal/core"
)

// Elastic membership over the wire. Join and leave are control-plane
// operations carried as small JSON bodies (the binary codec stays the
// data plane):
//
//	POST /v1/join   {"worker": -1, "samples": N}  — admit a new identity
//	POST /v1/join   {"worker": id, "samples": N}  — re-admit a departed one
//	POST /v1/leave  {"worker": id}                — depart voluntarily
//
// Both handlers queue the request and block until the coordinator applies
// membership at its next round boundary (Server.ProcessMembership) — the
// pipeline's cohort is immutable mid-round, so admission cannot take
// effect earlier, and answering before it takes effect would let a joiner
// poll for a model it is not part of. A banned identity's re-join is
// refused with 403 Forbidden.

// maxMembershipBytes bounds a join/leave JSON body.
const maxMembershipBytes = 1 << 16

// joinReply resolves one queued join: the assigned (or re-admitted)
// worker ID, or the refusal.
type joinReply struct {
	id  int
	err error
}

// joinRequest is one queued /v1/join handshake.
type joinRequest struct {
	ctx     context.Context // the HTTP request's; abandoned joins are skipped
	worker  int             // -1 = new identity, >= 0 = re-admission
	samples int
	done    chan joinReply // buffered; ProcessMembership never blocks on it
}

// leaveRequest is one queued /v1/leave.
type leaveRequest struct {
	worker int
	done   chan error
}

// ProcessMembership applies every queued join and leave at a round
// boundary: leaves first (departures free cohort capacity), then joins in
// arrival order. Each requester's blocked handler is answered with its
// outcome. It returns how many requests changed the cohort; per-request
// refusals travel to the requester, not the caller. Call it between
// RunRound calls only — never mid-round.
func (s *Server) ProcessMembership() (applied int) {
	s.mu.Lock()
	joins, leaves := s.joins, s.leaves
	s.joins, s.leaves = nil, nil
	s.mu.Unlock()
	for _, lr := range leaves {
		err := s.removeWorker(lr.worker, false)
		if err == nil {
			applied++
		}
		lr.done <- err
	}
	for _, jr := range joins {
		if jr.ctx.Err() != nil {
			// The requester hung up while queued; admitting a ghost worker
			// would just farm timeouts. Drop the request.
			jr.done <- joinReply{err: jr.ctx.Err()}
			continue
		}
		id, err := s.admitWorker(jr)
		if err == nil {
			applied++
		}
		jr.done <- joinReply{id: id, err: err}
	}
	return applied
}

// PendingMembership reports how many join/leave requests are queued for
// the next boundary.
func (s *Server) PendingMembership() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.joins) + len(s.leaves)
}

// DepartWorker removes an active worker between rounds on the
// coordinator's own initiative (an operator drain), mirroring a wire
// leave.
func (s *Server) DepartWorker(id int) error { return s.removeWorker(id, false) }

// EvictWorker bans an identity permanently: refused re-admission — in
// process, over the wire, and across checkpoint/resume — and excluded
// from server election. Call between rounds only.
func (s *Server) EvictWorker(id int) error { return s.removeWorker(id, true) }

// removeWorker takes an identity out of the cohort and deactivates its
// wire registration so stray submissions are refused.
func (s *Server) removeWorker(id int, evict bool) error {
	var err error
	if evict {
		err = s.coord.EvictWorker(id)
	} else {
		err = s.coord.DepartWorker(id)
	}
	if err != nil {
		return err
	}
	return s.hub.deactivate(id)
}

// admitWorker seats one queued join: a new identity gets the registry's
// next stable ID (hub arrays, engine stub, reputation bootstrap and
// signing identity all grow together); a returning one is re-activated
// with its history intact, unless banned.
func (s *Server) admitWorker(jr joinRequest) (int, error) {
	if jr.worker >= 0 {
		if err := s.hub.reactivate(jr.worker, jr.samples); err != nil {
			return 0, err
		}
		if err := s.coord.ReadmitWorker(jr.worker, &remoteWorker{hub: s.hub, id: jr.worker}); err != nil {
			_ = s.hub.deactivate(jr.worker) // roll the wire registration back
			return 0, err
		}
		s.growAccounting()
		return jr.worker, nil
	}
	id := s.coord.Members().NumKnown() // the ID Admit will assign
	if err := s.hub.addWorker(id, jr.samples); err != nil {
		return 0, err
	}
	got, err := s.coord.AdmitWorker(&remoteWorker{hub: s.hub, id: id})
	if err != nil {
		_ = s.hub.deactivate(id) // the grown hub entry stays inert
		return 0, err
	}
	if got != id {
		return 0, fmt.Errorf("transport: registry assigned worker %d, hub reserved %d", got, id)
	}
	s.growAccounting()
	return id, nil
}

// growAccounting extends the per-worker wire accounting and instruments
// to cover every hub identity.
func (s *Server) growAccounting() {
	n := s.hub.size()
	s.sm.growTo(n)
	s.mu.Lock()
	for len(s.upBytes) < n {
		s.upBytes = append(s.upBytes, 0)
	}
	for len(s.downBytes) < n {
		s.downBytes = append(s.downBytes, 0)
	}
	s.mu.Unlock()
}

// handleJoin queues a membership handshake and blocks until the next
// round boundary resolves it.
func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Worker  *int `json:"worker"`
		Samples int  `json:"samples"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, maxMembershipBytes)).Decode(&req); err != nil {
		http.Error(w, "transport: join body: "+err.Error(), http.StatusBadRequest)
		return
	}
	worker := -1
	if req.Worker != nil {
		worker = *req.Worker
	}
	if worker < -1 {
		http.Error(w, fmt.Sprintf("transport: join with worker %d (use -1 for a new identity)", worker), http.StatusBadRequest)
		return
	}
	if req.Samples <= 0 {
		http.Error(w, fmt.Sprintf("transport: join declares %d samples", req.Samples), http.StatusBadRequest)
		return
	}
	jr := joinRequest{ctx: r.Context(), worker: worker, samples: req.Samples, done: make(chan joinReply, 1)}
	s.mu.Lock()
	s.joins = append(s.joins, jr)
	s.mu.Unlock()
	select {
	case rep := <-jr.done:
		if rep.err != nil {
			status := http.StatusConflict
			if errors.Is(rep.err, core.ErrBanned) {
				status = http.StatusForbidden
			}
			http.Error(w, rep.err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]int{"worker": rep.id})
	case <-r.Context().Done():
		// The client abandoned the handshake; ProcessMembership's reply
		// lands in the buffered channel and the request is dropped there.
	}
}

// handleLeave queues a voluntary departure and blocks until the boundary
// applies it.
func (s *Server) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Worker *int `json:"worker"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, maxMembershipBytes)).Decode(&req); err != nil {
		http.Error(w, "transport: leave body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Worker == nil || *req.Worker < 0 {
		http.Error(w, "transport: leave requires a non-negative worker", http.StatusBadRequest)
		return
	}
	lr := leaveRequest{worker: *req.Worker, done: make(chan error, 1)}
	s.mu.Lock()
	s.leaves = append(s.leaves, lr)
	s.mu.Unlock()
	select {
	case err := <-lr.done:
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case <-r.Context().Done():
	}
}

// membershipPost issues one JSON control-plane POST (no retries: the
// server already queues the request durably for the boundary, so a
// replayed join could admit twice).
func membershipPost(ctx context.Context, baseURL, path string, payload any) (body []byte, status int, err error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+path, bytes.NewReader(raw))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("transport: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(io.LimitReader(resp.Body, maxMembershipBytes))
	if err != nil {
		return nil, 0, fmt.Errorf("transport: reading %s response: %w", path, err)
	}
	return body, resp.StatusCode, nil
}

// JoinFederation performs the elastic-membership handshake for a brand-
// new participant: it declares the dataset size and blocks until the
// coordinator's next round boundary assigns a stable worker ID, which is
// returned. The join subsumes hello — the caller builds its fl.Worker
// around the assigned ID and connects with DialWorker (whose hello is an
// idempotent re-registration).
func JoinFederation(ctx context.Context, baseURL string, samples int) (int, error) {
	body, status, err := membershipPost(ctx, baseURL, "/v1/join", map[string]int{"worker": -1, "samples": samples})
	if err != nil {
		return 0, err
	}
	if status < 200 || status >= 300 {
		return 0, joinError(status, body)
	}
	var rep struct {
		Worker int `json:"worker"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		return 0, fmt.Errorf("transport: join response: %w", err)
	}
	return rep.Worker, nil
}

// RejoinFederation re-admits a previously departed identity with its
// reputation and reward history intact. A banned identity is refused with
// an error wrapping core.ErrBanned.
func RejoinFederation(ctx context.Context, baseURL string, worker, samples int) error {
	if worker < 0 {
		return fmt.Errorf("transport: RejoinFederation requires a non-negative worker, got %d", worker)
	}
	body, status, err := membershipPost(ctx, baseURL, "/v1/join", map[string]int{"worker": worker, "samples": samples})
	if err != nil {
		return err
	}
	if status < 200 || status >= 300 {
		return joinError(status, body)
	}
	return nil
}

// joinError maps a join refusal to an error; 403 marks the banned case so
// callers can errors.Is(err, core.ErrBanned).
func joinError(status int, body []byte) error {
	msg := string(bytes.TrimSpace(body))
	if status == http.StatusForbidden {
		return fmt.Errorf("transport: join refused (%s): %w", msg, core.ErrBanned)
	}
	return fmt.Errorf("transport: join refused: HTTP %d: %s", status, msg)
}

// Leave departs the federation voluntarily, blocking until the
// coordinator's next round boundary unseats this worker. The identity
// keeps its history and may return via RejoinFederation.
func (c *Client) Leave(ctx context.Context) error {
	body, status, err := membershipPost(ctx, c.cfg.BaseURL, "/v1/leave", map[string]int{"worker": c.cfg.Worker.ID()})
	if err != nil {
		return err
	}
	if status == http.StatusNoContent {
		return nil
	}
	return fmt.Errorf("transport: leave refused: HTTP %d: %s", status, bytes.TrimSpace(body))
}
