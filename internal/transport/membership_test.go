package transport

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"fifl/internal/chain"
	"fifl/internal/core"
	"fifl/internal/fl"
	"fifl/internal/persist"
	"fifl/internal/rng"
)

// waitPending polls until at least n membership requests are queued on
// the server — the test's stand-in for "the handshake reached the wire".
func waitPending(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if srv.PendingMembership() >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("membership queue never reached %d requests", n)
}

// elasticNet assembles a loopback federation whose recipe reserves extra
// partitions for joiners: nActive workers are live, recipe.Workers bounds
// the identities the data supports.
type elasticNet struct {
	recipe Recipe
	hub    *Hub
	coord  *core.Coordinator
	srv    *Server
	ts     *httptest.Server
}

func newElasticNet(t *testing.T, nActive, nTotal int) *elasticNet {
	t.Helper()
	recipe := Recipe{Seed: 11, Workers: nTotal, SamplesPerWorker: 60}
	build, err := recipe.Builder()
	if err != nil {
		t.Fatal(err)
	}
	hub, err := NewHub(nActive)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := fl.NewEngine(fl.Config{Servers: 2, GlobalLR: 0.05}, build, hub.Workers(),
		rng.New(recipe.Seed).Split("netfed"), fl.WithWorkerTimeout(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	coord, err := core.NewCoordinator(coordConfig(), engine, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(coord, hub)
	if err != nil {
		t.Fatal(err)
	}
	n := &elasticNet{recipe: recipe, hub: hub, coord: coord, srv: srv, ts: httptest.NewServer(srv.Handler())}
	t.Cleanup(func() {
		n.srv.Close()
		n.ts.Close()
	})
	return n
}

func (n *elasticNet) dial(t *testing.T, ctx context.Context, id int) *Client {
	t.Helper()
	w, err := n.recipe.Worker(id)
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialWorker(ctx, ClientConfig{BaseURL: n.ts.URL, Worker: w, PollWait: 500 * time.Millisecond})
	if err != nil {
		t.Fatalf("dialing worker %d: %v", id, err)
	}
	return c
}

// TestElasticMembershipOverHTTP drives a join and a leave end to end over
// real HTTP: a fourth worker joins after round 1 via the /v1/join
// handshake and is paid from round 2 on; worker 1 leaves after round 3
// and rounds 4–5 run over the shrunk cohort.
func TestElasticMembershipOverHTTP(t *testing.T) {
	const rounds = 6
	net := newElasticNet(t, 3, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	clients := make([]*Client, 3)
	for i := range clients {
		clients[i] = net.dial(t, ctx, i)
	}
	if err := net.srv.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	runErrs := make([]chan error, 4)
	w1ctx, w1cancel := context.WithCancel(ctx)
	defer w1cancel()
	for i, c := range clients {
		c, cctx := c, ctx
		if i == 1 {
			cctx = w1ctx
		}
		runErrs[i] = make(chan error, 1)
		ch := runErrs[i]
		go func() {
			_, err := c.Run(cctx)
			ch <- err
		}()
	}

	reports := make([]*core.RoundReport, rounds)
	run := func(r int) {
		t.Helper()
		rep, err := net.srv.RunRound(ctx, r)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		reports[r] = rep
	}
	run(0)
	run(1)

	// A fourth participant joins over the wire between rounds 1 and 2.
	type joinOutcome struct {
		id  int
		err error
	}
	joined := make(chan joinOutcome, 1)
	runErrs[3] = make(chan error, 1)
	go func() {
		id, err := JoinFederation(ctx, net.ts.URL, net.recipe.SamplesPerWorker)
		joined <- joinOutcome{id: id, err: err}
		if err != nil {
			runErrs[3] <- nil
			return
		}
		c := net.dial(t, ctx, id)
		_, err = c.Run(ctx)
		runErrs[3] <- err
	}()
	waitPending(t, net.srv, 1)
	if got := net.srv.ProcessMembership(); got != 1 {
		t.Fatalf("ProcessMembership applied %d changes, want 1", got)
	}
	jo := <-joined
	if jo.err != nil {
		t.Fatalf("join handshake: %v", jo.err)
	}
	if jo.id != 3 {
		t.Fatalf("joiner assigned worker ID %d, want 3", jo.id)
	}
	run(2)
	run(3)

	// Worker 1 leaves over the wire between rounds 3 and 4: its run loop
	// stops, then the leave handshake blocks until the boundary.
	w1cancel()
	<-runErrs[1]
	leaveDone := make(chan error, 1)
	go func() { leaveDone <- clients[1].Leave(ctx) }()
	waitPending(t, net.srv, 1)
	if got := net.srv.ProcessMembership(); got != 1 {
		t.Fatalf("ProcessMembership applied %d changes, want 1", got)
	}
	if err := <-leaveDone; err != nil {
		t.Fatalf("leave handshake: %v", err)
	}
	run(4)
	run(5)
	net.srv.Close()
	for _, i := range []int{0, 2, 3} {
		if err := <-runErrs[i]; err != nil {
			t.Fatalf("worker %d run loop: %v", i, err)
		}
	}

	wantIDs := map[int][]int{0: {0, 1, 2}, 2: {0, 1, 2, 3}, 4: {0, 2, 3}}
	for r, want := range wantIDs {
		got := reports[r].WorkerIDs
		if len(got) != len(want) {
			t.Fatalf("round %d cohort %v, want %v", r, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d cohort %v, want %v", r, got, want)
			}
		}
	}
	// The joiner's assessments reached the ledger under its stable ID.
	if recs := net.coord.Ledger.Query(chain.KindReward, 2, 3); len(recs) != 1 {
		t.Fatalf("joiner has %d reward records for round 2, want 1", len(recs))
	}
	// The leaver's identity (and its rewards) survive its departure.
	if got := len(net.coord.CumulativeRewards()); got != 4 {
		t.Fatalf("cumulative rewards cover %d identities, want 4", got)
	}
	if st, _ := net.coord.Members().State(1); st != core.StateDeparted {
		t.Fatalf("leaver state %v, want departed", st)
	}
}

// TestBannedWorkerRefusedOverHTTP is satellite 3's wire half, including
// the checkpoint leg: an identity evicted before the kill must be refused
// re-admission with 403/ErrBanned both on the live server and on a server
// restored from the checkpoint.
func TestBannedWorkerRefusedOverHTTP(t *testing.T) {
	net := newElasticNet(t, 4, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	clients := make([]*Client, 4)
	for i := range clients {
		clients[i] = net.dial(t, ctx, i)
	}
	if err := net.srv.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	ctxs := make([]context.CancelFunc, 4)
	runDone := make([]chan error, 4)
	for i, c := range clients {
		c := c
		cctx, ccancel := context.WithCancel(ctx)
		ctxs[i] = ccancel
		runDone[i] = make(chan error, 1)
		ch := runDone[i]
		go func() {
			_, err := c.Run(cctx)
			ch <- err
		}()
	}
	if _, err := net.srv.RunRound(ctx, 0); err != nil {
		t.Fatal(err)
	}

	// Evict worker 3 between rounds; its submissions and rejoin attempts
	// are refused from here on.
	ctxs[3]()
	<-runDone[3]
	if err := net.srv.EvictWorker(3); err != nil {
		t.Fatal(err)
	}
	if _, err := net.srv.RunRound(ctx, 1); err != nil {
		t.Fatal(err)
	}
	rejoinDone := make(chan error, 1)
	go func() {
		rejoinDone <- RejoinFederation(ctx, net.ts.URL, 3, net.recipe.SamplesPerWorker)
	}()
	waitPending(t, net.srv, 1)
	if got := net.srv.ProcessMembership(); got != 0 {
		t.Fatalf("banned rejoin applied %d changes, want 0", got)
	}
	if err := <-rejoinDone; !errors.Is(err, core.ErrBanned) {
		t.Fatalf("banned rejoin over HTTP: %v, want ErrBanned", err)
	}

	// Checkpoint, tear the federation down, restore a fresh server from
	// the snapshot, and prove the ban carried over the kill.
	var ckpt bytes.Buffer
	if err := net.coord.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	net.srv.Close()
	for _, i := range []int{0, 1, 2} {
		<-runDone[i]
	}
	net.ts.Close()

	snap, err := persist.Read(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	hub2, err := NewHub(len(snap.Reputations))
	if err != nil {
		t.Fatal(err)
	}
	seated := make(map[int]bool, len(snap.ActiveCohort))
	for _, id := range snap.ActiveCohort {
		seated[id] = true
	}
	for id := 0; id < len(snap.Reputations); id++ {
		if !seated[id] {
			if err := hub2.MarkInactive(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := hub2.Restore(snap.NextRound-1, snap.Params, snap.Samples); err != nil {
		t.Fatal(err)
	}
	stubs, err := hub2.WorkersFor(snap.ActiveCohort)
	if err != nil {
		t.Fatal(err)
	}
	build, err := net.recipe.Builder()
	if err != nil {
		t.Fatal(err)
	}
	engine2, err := fl.NewEngine(fl.Config{Servers: 2, GlobalLR: 0.05}, build, stubs,
		rng.New(net.recipe.Seed).Split("netfed"), fl.WithWorkerTimeout(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	coord2, err := core.RestoreCoordinatorSnapshot(snap, coordConfig(), engine2)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(coord2, hub2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Close()
	if st, _ := coord2.Members().State(3); st != core.StateBanned {
		t.Fatalf("restored state for the evicted worker is %v, want banned", st)
	}
	rejoinDone2 := make(chan error, 1)
	go func() {
		rejoinDone2 <- RejoinFederation(ctx, ts2.URL, 3, net.recipe.SamplesPerWorker)
	}()
	waitPending(t, srv2, 1)
	if got := srv2.ProcessMembership(); got != 0 {
		t.Fatalf("banned rejoin after restore applied %d changes, want 0", got)
	}
	if err := <-rejoinDone2; !errors.Is(err, core.ErrBanned) {
		t.Fatalf("banned rejoin after restore: %v, want ErrBanned", err)
	}
	// A brand-new identity is still welcome on the restored server.
	joinDone := make(chan error, 1)
	go func() {
		id, err := JoinFederation(ctx, ts2.URL, net.recipe.SamplesPerWorker)
		if err == nil && id != len(snap.Reputations) {
			err = errors.New("unexpected joiner ID")
		}
		joinDone <- err
	}()
	waitPending(t, srv2, 1)
	if got := srv2.ProcessMembership(); got != 1 {
		t.Fatalf("fresh join after restore applied %d changes, want 1", got)
	}
	if err := <-joinDone; err != nil {
		t.Fatalf("fresh join after restore: %v", err)
	}
}
