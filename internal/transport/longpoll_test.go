package transport

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fifl/internal/core"
	"fifl/internal/fl"
	"fifl/internal/metrics"
	"fifl/internal/rng"
)

// newLongpollServer builds a coordinator endpoint over an idle hub — no
// rounds run, so every /v1/model poll parks until its window resolves —
// with an isolated metrics registry for counter assertions.
func newLongpollServer(t *testing.T) *Server {
	t.Helper()
	recipe := Recipe{Seed: 5, Workers: 2, SamplesPerWorker: 30}
	build, err := recipe.Builder()
	if err != nil {
		t.Fatal(err)
	}
	hub, err := NewHub(recipe.Workers)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := fl.NewEngine(fl.Config{Servers: 1, GlobalLR: 0.05}, build, hub.Workers(),
		rng.New(recipe.Seed).Split("longpoll"),
		fl.WithWorkerTimeout(time.Second), fl.WithMetrics(metrics.New()))
	if err != nil {
		t.Fatal(err)
	}
	coord, err := core.NewCoordinator(coordConfig(), engine, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(coord, hub)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestHandleModelGaugeSurvivesPanickingHub: the longpoll occupancy gauge
// must be decremented on every exit path from handleModel, including a
// panic below the wait (which net/http's recover machinery swallows). The
// old sequential decrement leaked one unit per panic, permanently
// overstating parked polls.
func TestHandleModelGaugeSurvivesPanickingHub(t *testing.T) {
	srv := newLongpollServer(t)
	srv.waitModel = func(ctx context.Context, after int, maxWait time.Duration) (int, []float64, bool, waitStatus) {
		panic(http.ErrAbortHandler) // the silent panic net/http recovers without logging
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/model?wait=50")
		if err == nil {
			resp.Body.Close()
			t.Fatal("aborted handler produced a complete response")
		}
	}
	if v := srv.sm.longpoll.Value(); v != 0 {
		t.Fatalf("longpoll gauge leaked: %v parked polls recorded after 3 panics, want 0", v)
	}
}

// TestWaitModelDistinguishesCancelFromTimeout: at the hub level, a poll
// window that elapses and a client that goes away are different outcomes —
// only the former should be answered.
func TestWaitModelDistinguishesCancelFromTimeout(t *testing.T) {
	hub, err := NewHub(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, status := hub.waitModel(context.Background(), 1<<30, 20*time.Millisecond); status != waitTimeout {
		t.Fatalf("elapsed window resolved as %d, want waitTimeout", status)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, status := hub.waitModel(ctx, 1<<30, time.Minute); status != waitCancelled {
		t.Fatalf("dead client resolved as %d, want waitCancelled", status)
	}
}

// TestHandleModelCountsTimeoutsAndCancelsSeparately: the server must 204
// a timed-out poll (and count it) but skip the write for a cancelled one
// (counting it under its own label).
func TestHandleModelCountsTimeoutsAndCancelsSeparately(t *testing.T) {
	srv := newLongpollServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/model?wait=30")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("timed-out poll answered %d, want 204", resp.StatusCode)
	}
	if got := srv.sm.pollTimeouts.Value(); got != 1 {
		t.Fatalf("poll timeouts = %d, want 1", got)
	}
	if got := srv.sm.pollCancels.Value(); got != 0 {
		t.Fatalf("poll cancels = %d before any cancellation, want 0", got)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/model?wait=9000", nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("cancelled poll produced a response")
	}
	// The handler observes the disconnect asynchronously; wait for the
	// counter rather than racing it.
	deadline := time.Now().Add(5 * time.Second)
	for srv.sm.pollCancels.Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("poll cancels = %d, want 1", srv.sm.pollCancels.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.sm.pollTimeouts.Value(); got != 1 {
		t.Fatalf("poll timeouts moved to %d on a cancellation, want still 1", got)
	}
}
