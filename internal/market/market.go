// Package market implements the federation-competition simulation of the
// paper's §5.2: a population of workers with heterogeneous data holdings
// chooses greedily among federations that differ only in their incentive
// mechanism, and we measure each mechanism's reward distribution,
// attractiveness, attracted data share, and system revenue — in reliable
// federations (Figures 4–5) and under attack (Figure 6).
//
// At market scale no actual model training happens (the paper runs 100
// repeats × 500 iterations × 20 workers, far beyond the budget of real
// training); rewards derive from the utility function Ψ(n) = log(1+n)
// exactly as the paper's baselines define, and FIFL's gradient-based
// contribution is abstracted by the statistical gradient model documented
// on FIFLScheme.
package market

import (
	"math"

	"fifl/internal/incentive"
	"fifl/internal/rng"
)

// Worker is one market participant.
type Worker struct {
	ID      int
	Samples int
	// Attacker marks a malicious participant. Attackers report their
	// sample count like anyone else (and thus draw rewards from
	// sample-count-based mechanisms) but destroy revenue instead of
	// producing it.
	Attacker bool
	// Degree is the attack degree ℧: the fraction of the federation's
	// revenue the attacker destroys if admitted to training.
	Degree float64
}

// Scheme is one federation offering: an incentive mechanism plus whatever
// defense it has.
type Scheme interface {
	// Name identifies the federation.
	Name() string
	// Rewards returns each population member's per-round reward if the
	// whole population joined this federation, given the round budget.
	// Negative rewards are punishments.
	Rewards(pop []Worker, budget float64) []float64
	// Revenue returns the federation's system revenue for an admitted
	// member set.
	Revenue(members []Worker) float64
}

// BaselineScheme adapts a sample-count-based baseline mechanism. It has no
// defense: attackers are admitted, rewarded by their reported samples, and
// destroy revenue by their attack degree.
type BaselineScheme struct {
	Mech incentive.Mechanism
}

// Name implements Scheme.
func (b BaselineScheme) Name() string { return b.Mech.Name() }

// Rewards distributes the budget by the mechanism's normalized weights over
// reported sample counts.
func (b BaselineScheme) Rewards(pop []Worker, budget float64) []float64 {
	samples := make([]int, len(pop))
	for i, w := range pop {
		samples[i] = w.Samples
	}
	shares := incentive.Shares(b.Mech, samples)
	out := make([]float64, len(shares))
	for i, s := range shares {
		out[i] = budget * s
	}
	return out
}

// Revenue is Ψ of the honest members' data, scaled down by the admitted
// attackers: each attacker a destroys the fraction ℧_a of revenue, the
// paper's Ψ(A) − Ψ(A∖{a}) = ℧·Ψ(A) definition.
func (b BaselineScheme) Revenue(members []Worker) float64 {
	honest := 0.0
	damage := 0.0
	for _, w := range members {
		if w.Attacker {
			damage += w.Degree
		} else {
			honest += float64(w.Samples)
		}
	}
	if damage > 1 {
		damage = 1
	}
	return incentive.Utility(honest) * (1 - damage)
}

// FIFLScheme is the market-level abstraction of FIFL. Two properties carry
// over from the full mechanism (internal/core):
//
//   - Contribution: a worker training on n_i samples uploads a gradient
//     whose expected squared distance to the global gradient shrinks as
//     1/n_i (mean-of-n estimator), so with the zero-gradient threshold b_h
//     its contribution is C_i = 1 − b_i/b_h = 1 − Kappa/n_i, where Kappa =
//     σ²·d/‖G̃‖² is the sample count at which a worker's gradient is no
//     better than uploading nothing. Workers below Kappa fall below the
//     bar b_h: in market terms they are simply not admitted to the
//     federation and earn nothing — FIFL's free-rider/low-utility
//     exclusion (§4.3).
//   - Defense: the detection module (validated in Figures 9–10) rejects
//     attackers' gradients, so attackers are excluded from aggregation (no
//     revenue damage) and their reward is a punishment: −PunishShare of
//     the budget each, scaled by their collapsed reputation.
type FIFLScheme struct {
	// Kappa is the break-even sample count of the contribution model; 0
	// means the default of 3000, calibrated so the exclusion bar falls in
	// the lower third of the paper's U[1,10000] population and FIFL's
	// reward curve is steepest among all mechanisms at the top bands
	// (Figure 4a's shape).
	Kappa float64
	// PunishShare is the punishment magnitude per detected attacker as a
	// fraction of the round budget; 0 means the default of 0.05.
	PunishShare float64
}

// Name implements Scheme.
func (FIFLScheme) Name() string { return "FIFL" }

// kappa returns the configured or default break-even sample count.
func (f FIFLScheme) kappa() float64 {
	if f.Kappa > 0 {
		return f.Kappa
	}
	return 3000
}

// Rewards pays honest workers by reputation-weighted contribution share and
// punishes attackers. Honest workers whose contribution falls below the
// b_h bar are excluded rather than fined (the bar keeps them out of the
// federation, §4.3); fines are reserved for detected attackers.
func (f FIFLScheme) Rewards(pop []Worker, budget float64) []float64 {
	punish := f.PunishShare
	if punish == 0 {
		punish = 0.05
	}
	contrib := make([]float64, len(pop))
	total := 0.0
	for i, w := range pop {
		if w.Attacker {
			continue
		}
		contrib[i] = 1 - f.kappa()/float64(w.Samples)
		if contrib[i] > 0 {
			total += contrib[i]
		}
	}
	out := make([]float64, len(pop))
	for i, w := range pop {
		if w.Attacker {
			out[i] = -punish * budget
			continue
		}
		if total > 0 && contrib[i] > 0 {
			// Honest long-term reputation converges to 1 (Theorem 1 with
			// p = 0), so the reputation factor of Eq. 15 is 1 here.
			out[i] = budget * contrib[i] / total
		}
	}
	return out
}

// Revenue is Ψ over honest members only: detected attackers are filtered
// before aggregation, so they cause no damage.
func (f FIFLScheme) Revenue(members []Worker) float64 {
	honest := 0.0
	for _, w := range members {
		if !w.Attacker {
			honest += float64(w.Samples)
		}
	}
	return incentive.Utility(honest)
}

// Schemes returns the five competing federations in the paper's order:
// FIFL plus the four baselines.
func Schemes() []Scheme {
	return []Scheme{
		FIFLScheme{},
		BaselineScheme{Mech: incentive.Union{}},
		BaselineScheme{Mech: incentive.Shapley{}},
		BaselineScheme{Mech: incentive.Individual{}},
		BaselineScheme{Mech: incentive.Equal{}},
	}
}

// Population draws the paper's worker population: n workers with sample
// counts uniform in [1, maxSamples], of which a fraction attackFrac (by
// count, rounded) are attackers with the given attack degree.
func Population(src *rng.Source, n, maxSamples int, attackFrac, degree float64) []Worker {
	pop := make([]Worker, n)
	for i := range pop {
		pop[i] = Worker{ID: i, Samples: src.UniformInt(1, maxSamples)}
	}
	nAtk := int(math.Round(attackFrac * float64(n)))
	for _, i := range src.Sample(n, nAtk) {
		pop[i].Attacker = true
		pop[i].Degree = degree
	}
	return pop
}

// Attractiveness returns, per worker, the relative proportion of (positive)
// rewards each scheme offers: A[i][f] = max(0, I_i^f) / Σ_g max(0, I_i^g).
// This is the worker's probability of joining federation f. A worker every
// federation punishes joins uniformly at random (it has to go somewhere for
// the attack experiments to be meaningful).
func Attractiveness(schemes []Scheme, pop []Worker, budget float64) [][]float64 {
	rewards := make([][]float64, len(schemes))
	for f, s := range schemes {
		rewards[f] = s.Rewards(pop, budget)
	}
	out := make([][]float64, len(pop))
	for i := range pop {
		row := make([]float64, len(schemes))
		total := 0.0
		for f := range schemes {
			if r := rewards[f][i]; r > 0 {
				row[f] = r
				total += r
			}
		}
		if total == 0 {
			for f := range row {
				row[f] = 1.0 / float64(len(schemes))
			}
		} else {
			for f := range row {
				row[f] /= total
			}
		}
		out[i] = row
	}
	return out
}

// Assign samples one federation per worker from its attractiveness
// distribution and returns the member lists per scheme.
func Assign(src *rng.Source, attract [][]float64, pop []Worker) [][]Worker {
	return AssignGreedy(src, attract, pop, 1)
}

// AssignGreedy samples one federation per worker with probability
// proportional to attractiveness^beta. The paper describes workers as
// joining "greedily ... to maximize their benefits" with probability equal
// to the relative reward proportion; beta interpolates between the purely
// proportional reading (beta = 1) and the purely greedy one (beta → ∞).
// The Figure 4–6 experiments use beta = 1.5, which reproduces the paper's
// reported attraction shares (FIFL 23.1%, Union 22.6%, Shapley 19%,
// Individual 18.1%, Equal 17.2%).
func AssignGreedy(src *rng.Source, attract [][]float64, pop []Worker, beta float64) [][]Worker {
	members := make([][]Worker, len(attract[0]))
	probs := make([]float64, len(attract[0]))
	for i, w := range pop {
		for f, a := range attract[i] {
			probs[f] = math.Pow(a, beta)
		}
		f := src.Categorical(probs)
		members[f] = append(members[f], w)
	}
	return members
}
