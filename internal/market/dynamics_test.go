package market

import (
	"math"
	"testing"

	"fifl/internal/rng"
)

func TestRunDynamicConservesWorkers(t *testing.T) {
	src := rng.New(81)
	pop := honestPop(src, 20)
	cfg := DynamicConfig{Iterations: 50, Budget: 1, Greediness: 1.5, Inertia: 0.8}
	res := RunDynamic(src.Split("run"), Schemes(), pop, cfg)
	total := 0
	for _, ms := range res.Membership {
		total += len(ms)
	}
	if total != 20 {
		t.Fatalf("final membership covers %d/20 workers", total)
	}
	if len(res.RevenueOverTime) != 5 || len(res.RevenueOverTime[0]) != 50 {
		t.Fatalf("revenue trajectory shape wrong")
	}
}

func TestRunDynamicRewardsAccumulate(t *testing.T) {
	src := rng.New(82)
	pop := honestPop(src, 20)
	cfg := DynamicConfig{Iterations: 40, Budget: 1, Greediness: 1.5, Inertia: 0.8}
	res := RunDynamic(src.Split("run"), Schemes(), pop, cfg)
	// Each iteration distributes at most 5 budgets (one per federation
	// with members); totals must be positive and bounded.
	sum := 0.0
	for _, r := range res.CumulativeReward {
		sum += r
	}
	if sum <= 0 {
		t.Fatalf("no rewards distributed: %v", sum)
	}
	if sum > float64(cfg.Iterations)*5*cfg.Budget+1e-9 {
		t.Fatalf("rewards exceed total budget: %v", sum)
	}
}

func TestRunDynamicInertiaLimitsSwitching(t *testing.T) {
	src := rng.New(83)
	pop := honestPop(src, 20)
	sticky := RunDynamic(src.Split("a"), Schemes(), pop,
		DynamicConfig{Iterations: 50, Budget: 1, Greediness: 1.5, Inertia: 0.95})
	loose := RunDynamic(src.Split("b"), Schemes(), pop,
		DynamicConfig{Iterations: 50, Budget: 1, Greediness: 1.5, Inertia: 0.2})
	if sticky.Switches >= loose.Switches {
		t.Fatalf("inertia should reduce switching: %d vs %d", sticky.Switches, loose.Switches)
	}
}

func TestRunDynamicFIFLRevenueStableUnderAttack(t *testing.T) {
	src := rng.New(84)
	pop := Population(src, 20, 10000, 0.385, 0.385)
	cfg := DynamicConfig{Iterations: 60, Budget: 1, Greediness: 1.5, Inertia: 0.8}
	res := RunDynamic(src.Split("run"), Schemes(), pop, cfg)
	// Time-averaged revenue: FIFL (index 0) must beat every baseline in
	// the attacked market.
	means := make([]float64, 5)
	for f := range means {
		sum := 0.0
		for _, v := range res.RevenueOverTime[f] {
			sum += v
		}
		means[f] = sum / float64(cfg.Iterations)
	}
	for f := 1; f < 5; f++ {
		if means[f] >= means[0] {
			t.Fatalf("federation %d mean revenue %v >= FIFL %v under attack", f, means[f], means[0])
		}
	}
}

func TestDefaultDynamicConfig(t *testing.T) {
	cfg := DefaultDynamicConfig()
	if cfg.Iterations != 500 || cfg.Budget != 1 {
		t.Fatalf("default config %+v", cfg)
	}
	if cfg.Inertia < 0 || cfg.Inertia > 1 || math.IsNaN(cfg.Greediness) {
		t.Fatalf("default config out of range %+v", cfg)
	}
}
