package market

import (
	"math"
	"testing"

	"fifl/internal/incentive"
	"fifl/internal/rng"
)

func honestPop(src *rng.Source, n int) []Worker {
	return Population(src, n, 10000, 0, 0)
}

func TestPopulationComposition(t *testing.T) {
	src := rng.New(1)
	pop := Population(src, 20, 10000, 0.4, 0.3)
	attackers := 0
	for _, w := range pop {
		if w.Samples < 1 || w.Samples > 10000 {
			t.Fatalf("samples out of range: %d", w.Samples)
		}
		if w.Attacker {
			attackers++
			if w.Degree != 0.3 {
				t.Fatalf("attack degree = %v", w.Degree)
			}
		}
	}
	if attackers != 8 {
		t.Fatalf("attackers = %d, want 8 (40%% of 20)", attackers)
	}
}

func TestBaselineSchemeRewardsSumToBudget(t *testing.T) {
	src := rng.New(2)
	pop := honestPop(src, 10)
	for _, s := range Schemes()[1:] {
		r := s.Rewards(pop, 5)
		sum := 0.0
		for _, v := range r {
			sum += v
		}
		if math.Abs(sum-5) > 1e-9 {
			t.Fatalf("%s rewards sum %v, want 5", s.Name(), sum)
		}
	}
}

func TestFIFLRewardsSumToBudgetForEligible(t *testing.T) {
	src := rng.New(3)
	pop := honestPop(src, 20)
	f := FIFLScheme{}
	r := f.Rewards(pop, 1)
	sum := 0.0
	for i, v := range r {
		sum += v
		if float64(pop[i].Samples) <= f.kappa() && v != 0 {
			t.Fatalf("below-bar worker %d paid %v", i, v)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("FIFL rewards sum %v", sum)
	}
}

func TestFIFLPunishesAttackers(t *testing.T) {
	pop := []Worker{
		{ID: 0, Samples: 8000},
		{ID: 1, Samples: 9000, Attacker: true, Degree: 0.3},
	}
	r := FIFLScheme{}.Rewards(pop, 1)
	if r[1] >= 0 {
		t.Fatalf("attacker reward %v, want negative", r[1])
	}
	if r[0] <= 0 {
		t.Fatalf("honest reward %v, want positive", r[0])
	}
}

func TestFIFLRevenueIgnoresAttackers(t *testing.T) {
	honest := []Worker{{Samples: 5000}}
	withAtk := []Worker{{Samples: 5000}, {Samples: 9000, Attacker: true, Degree: 0.385}}
	f := FIFLScheme{}
	if f.Revenue(honest) != f.Revenue(withAtk) {
		t.Fatal("detected attackers must not change FIFL revenue")
	}
}

func TestBaselineRevenueDamaged(t *testing.T) {
	b := BaselineScheme{Mech: incentive.Union{}}
	honest := []Worker{{Samples: 5000}}
	withAtk := []Worker{{Samples: 5000}, {Samples: 9000, Attacker: true, Degree: 0.4}}
	clean := b.Revenue(honest)
	hurt := b.Revenue(withAtk)
	if math.Abs(hurt-clean*0.6) > 1e-9 {
		t.Fatalf("baseline revenue %v, want %v", hurt, clean*0.6)
	}
	// Damage saturates at total loss.
	ruined := b.Revenue([]Worker{
		{Samples: 5000},
		{Samples: 1, Attacker: true, Degree: 0.7},
		{Samples: 1, Attacker: true, Degree: 0.7},
	})
	if ruined != 0 {
		t.Fatalf("over-attacked revenue %v, want 0", ruined)
	}
}

func TestAttractivenessRowsAreDistributions(t *testing.T) {
	src := rng.New(4)
	pop := Population(src, 20, 10000, 0.2, 0.3)
	a := Attractiveness(Schemes(), pop, 1)
	for i, row := range a {
		sum := 0.0
		for _, v := range row {
			if v < 0 {
				t.Fatalf("negative probability for worker %d: %v", i, row)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("worker %d attractiveness sums %v", i, sum)
		}
	}
}

func TestAttractivenessPunishedWorkerUniform(t *testing.T) {
	// An attacker punished by FIFL and rewarded nowhere... actually the
	// baselines still pay it; craft a worker every scheme rejects: not
	// possible with baselines, so test the all-negative path directly via
	// a pure-FIFL scheme list.
	pop := []Worker{{ID: 0, Samples: 100, Attacker: true, Degree: 0.5}}
	a := Attractiveness([]Scheme{FIFLScheme{}}, pop, 1)
	if a[0][0] != 1 {
		t.Fatalf("single-scheme fallback should be uniform, got %v", a[0])
	}
}

func TestAssignPartition(t *testing.T) {
	src := rng.New(5)
	pop := honestPop(src, 30)
	attract := Attractiveness(Schemes(), pop, 1)
	members := Assign(src, attract, pop)
	total := 0
	for _, ms := range members {
		total += len(ms)
	}
	if total != 30 {
		t.Fatalf("assignment lost workers: %d/30", total)
	}
}

func TestAssignGreedyConcentrates(t *testing.T) {
	// With beta → large, every worker lands on its argmax federation.
	src := rng.New(6)
	pop := honestPop(src, 30)
	attract := Attractiveness(Schemes(), pop, 1)
	members := AssignGreedy(rng.New(7), attract, pop, 50)
	// Re-run: the assignment must be deterministic up to the RNG, and
	// each worker must be in its argmax scheme.
	idx := map[int]int{}
	for f, ms := range members {
		for _, w := range ms {
			idx[w.ID] = f
		}
	}
	for i, row := range attract {
		best, bestV := 0, row[0]
		for f, v := range row {
			if v > bestV {
				best, bestV = f, v
			}
		}
		// Ties and numerically-close seconds can flip; only check clear
		// winners.
		second := 0.0
		for f, v := range row {
			if f != best && v > second {
				second = v
			}
		}
		if bestV > 2*second && idx[pop[i].ID] != best {
			t.Fatalf("worker %d with clear argmax %d assigned to %d", i, best, idx[pop[i].ID])
		}
	}
}

func TestSchemesLineup(t *testing.T) {
	s := Schemes()
	if len(s) != 5 || s[0].Name() != "FIFL" {
		t.Fatalf("Schemes() = %d entries, first %q", len(s), s[0].Name())
	}
}

// TestFIFLMoreAttractiveToTopWorkers reproduces the §5.2 headline at unit
// scale: for workers above 9000 samples, FIFL's expected reward exceeds
// every baseline's.
func TestFIFLMoreAttractiveToTopWorkers(t *testing.T) {
	src := rng.New(8)
	schemes := Schemes()
	wins := 0
	trials := 0
	for rep := 0; rep < 30; rep++ {
		pop := honestPop(src.SplitN("rep", rep), 20)
		rewards := make([][]float64, len(schemes))
		for f, s := range schemes {
			rewards[f] = s.Rewards(pop, 1)
		}
		for i, w := range pop {
			if w.Samples <= 9000 {
				continue
			}
			trials++
			top := true
			for f := 1; f < len(schemes); f++ {
				if rewards[f][i] >= rewards[0][i] {
					top = false
				}
			}
			if top {
				wins++
			}
		}
	}
	if trials == 0 {
		t.Skip("no top workers drawn")
	}
	if frac := float64(wins) / float64(trials); frac < 0.6 {
		t.Fatalf("FIFL best-for-top-worker rate %v, want > 0.6", frac)
	}
}
