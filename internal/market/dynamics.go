package market

import (
	"math"

	"fifl/internal/rng"
)

// DynamicConfig controls a multi-iteration market simulation: the paper's
// §5.2 setup runs 500 communication iterations in which workers "greedily
// join a federated learning system ... to maximize their benefits". In the
// dynamic model, each iteration every worker observes the reward it would
// currently earn in each federation and re-chooses with probability
// proportional to attractiveness^Greediness, with Inertia making switching
// sticky (a worker keeps its federation unless re-sampling moves it).
type DynamicConfig struct {
	// Iterations is the number of market rounds (the paper: 500).
	Iterations int
	// Budget is the per-iteration reward pool of every federation.
	Budget float64
	// Greediness is the attractiveness exponent (see AssignGreedy).
	Greediness float64
	// Inertia is the probability a worker skips re-choosing in an
	// iteration. Workers re-evaluating every round makes the market
	// oscillate; the paper's stable curves imply sticky membership.
	Inertia float64
}

// DefaultDynamicConfig mirrors the paper's scale with stable dynamics.
func DefaultDynamicConfig() DynamicConfig {
	return DynamicConfig{Iterations: 500, Budget: 1, Greediness: 1.5, Inertia: 0.8}
}

// DynamicResult is the trajectory of one dynamic market run.
type DynamicResult struct {
	// Membership[f] is the final member list of federation f.
	Membership [][]Worker
	// RevenueOverTime[f][t] is federation f's revenue at iteration t.
	RevenueOverTime [][]float64
	// CumulativeReward[i] is worker i's total earnings across iterations.
	CumulativeReward []float64
	// Switches counts federation changes across all workers.
	Switches int
}

// RunDynamic simulates the multi-iteration market. Rewards inside each
// federation are computed among its current members only (a worker's share
// depends on who else joined); attractiveness toward other federations is
// estimated from full-population rewards, which is what a worker can
// observe from published incentive rules.
func RunDynamic(src *rng.Source, schemes []Scheme, pop []Worker, cfg DynamicConfig) *DynamicResult {
	nf := len(schemes)
	res := &DynamicResult{
		Membership:       make([][]Worker, nf),
		RevenueOverTime:  make([][]float64, nf),
		CumulativeReward: make([]float64, len(pop)),
	}
	for f := range res.RevenueOverTime {
		res.RevenueOverTime[f] = make([]float64, cfg.Iterations)
	}

	// Published-rule attractiveness (full population) drives choice.
	attract := Attractiveness(schemes, pop, cfg.Budget)

	// Initial assignment.
	member := make([]int, len(pop)) // worker -> federation index
	assigned := AssignGreedy(src.Split("init"), attract, pop, cfg.Greediness)
	for f, ws := range assigned {
		for _, w := range ws {
			member[w.ID] = f
		}
	}

	choice := src.Split("choice")
	probs := make([]float64, nf)
	for t := 0; t < cfg.Iterations; t++ {
		// Compute rewards within each federation's current membership.
		members := make([][]Worker, nf)
		for _, w := range pop {
			members[member[w.ID]] = append(members[member[w.ID]], w)
		}
		for f, s := range schemes {
			res.RevenueOverTime[f][t] = s.Revenue(members[f])
			if len(members[f]) == 0 {
				continue
			}
			rewards := s.Rewards(members[f], cfg.Budget)
			for i, w := range members[f] {
				res.CumulativeReward[w.ID] += rewards[i]
			}
		}
		// Re-choice with inertia.
		for i := range pop {
			if choice.Bernoulli(cfg.Inertia) {
				continue
			}
			for f := range probs {
				probs[f] = math.Pow(attract[i][f], cfg.Greediness)
			}
			next := choice.Categorical(probs)
			if next != member[i] {
				res.Switches++
				member[i] = next
			}
		}
	}
	members := make([][]Worker, nf)
	for _, w := range pop {
		members[member[w.ID]] = append(members[member[w.ID]], w)
	}
	res.Membership = members
	return res
}
