package attack

import (
	"math"
	"testing"

	"fifl/internal/dataset"
	"fifl/internal/fl"
	"fifl/internal/nn"
	"fifl/internal/rng"
)

// TestUndefendedStrongAttackDestroysModel pins the paper's §5.3.1
// observation: a strongly aggressive sign-flipping attacker (p_s ≥ 10)
// thoroughly crashes an undefended model. Deep models overflow all the
// way to NaN (the Figure 10 "without detection" arm does); this MLP's
// single layer diverges polynomially, so the test asserts the loss
// explodes far past destruction (chance level is ln 10 ≈ 2.3).
func TestUndefendedStrongAttackDestroysModel(t *testing.T) {
	src := rng.New(111)
	const n = 4
	build := nn.NewMLP(111, 28*28, []int{16}, 10)
	data := dataset.SynthDigits(src.Split("train"), n*80)
	test := dataset.SynthDigits(src.Split("test"), 80)
	parts := data.PartitionIID(src.Split("parts"), n)
	lc := fl.LocalConfig{K: 1, BatchSize: 32, LR: 0.05}
	workers := make([]fl.Worker, n)
	for i := 0; i < n-2; i++ {
		workers[i] = fl.NewHonestWorker(i, parts[i], build, lc, src)
	}
	// Two p_s = 12 attackers in a four-worker federation: the aggregate
	// gradient points strongly uphill every round.
	workers[n-2] = NewSignFlipWorker(n-2, parts[n-2], build, lc, src, 12)
	workers[n-1] = NewSignFlipWorker(n-1, parts[n-1], build, lc, src, 12)
	engine, err := fl.NewEngine(fl.Config{Servers: 2, GlobalLR: 0.1}, build, workers, src)
	if err != nil {
		t.Fatal(err)
	}

	crashed := false
	for round := 0; round < 60 && !crashed; round++ {
		engine.Step(round)
		_, loss := engine.Evaluate(test, 80)
		if math.IsNaN(loss) || math.IsInf(loss, 0) || loss > 50 {
			crashed = true
		}
	}
	if !crashed {
		_, loss := engine.Evaluate(test, 80)
		t.Fatalf("undefended model survived a ps=12 attack (final loss %v); the paper reports thorough crashes", loss)
	}
}
