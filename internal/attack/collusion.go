package attack

import (
	"sync"

	"fifl/internal/dataset"
	"fifl/internal/fl"
	"fifl/internal/gradvec"
	"fifl/internal/nn"
	"fifl/internal/rng"
)

// Collusion coordinates a group of "a little is enough"-style attackers
// (Baruch et al., the paper's [2]): each member computes its honest
// gradient, the cabal averages them, and every member uploads the same
// slightly shifted gradient
//
//	G_atk = mean(G_members) − ε · mean(G_members)
//
// i.e. a small common perturbation that stays within the spread of honest
// gradients. The paper explicitly scopes FIFL to "disorganized attack
// scenarios with not colluding attackers" (§4.1); this attacker exists to
// characterize that boundary — the abl-collusion experiment shows the
// cosine detector does NOT flag these updates, confirming the paper's
// stated limitation rather than contradicting it.
type Collusion struct {
	// Epsilon is the relative shift each member applies; small values
	// (0.1–0.5) stay inside the honest gradient spread.
	Epsilon float64

	mu      sync.Mutex
	round   int
	pending map[int]gradvec.Vector // member ID -> honest gradient this round
	members int
	result  gradvec.Vector
	done    chan struct{}
}

// NewCollusion creates a cabal coordination point for the given number of
// members.
func NewCollusion(epsilon float64, members int) *Collusion {
	return &Collusion{
		Epsilon: epsilon,
		round:   -1,
		members: members,
	}
}

// submit contributes one member's honest gradient for the round and blocks
// until the cabal's common upload is ready.
func (c *Collusion) submit(round, id int, g gradvec.Vector) gradvec.Vector {
	c.mu.Lock()
	if c.round != round {
		c.round = round
		c.pending = make(map[int]gradvec.Vector, c.members)
		c.done = make(chan struct{})
	}
	c.pending[id] = g
	done := c.done
	if len(c.pending) == c.members {
		// Last member in: build the common poisoned update.
		mean := gradvec.Zeros(len(g))
		w := 1.0 / float64(c.members)
		for _, pg := range c.pending {
			mean.AddScaled(w, pg)
		}
		// Shift: (1 − ε)·mean — a gentle shrink-and-drag that stays
		// aligned with the honest direction.
		mean.Scale(1 - c.Epsilon)
		c.result = mean
		close(done)
	}
	c.mu.Unlock()
	<-done
	c.mu.Lock()
	out := c.result.Clone()
	c.mu.Unlock()
	return out
}

// ColludingWorker is one member of a Collusion cabal. All members must be
// registered in the same federation and will train in the same rounds (the
// fl.Engine collects all workers every round), otherwise submit deadlocks.
type ColludingWorker struct {
	*fl.HonestWorker
	cabal *Collusion
}

// NewColludingWorker wraps an honest trainer as a cabal member.
func NewColludingWorker(id int, data *dataset.Dataset, build nn.Builder, cfg fl.LocalConfig, src *rng.Source, cabal *Collusion) *ColludingWorker {
	return &ColludingWorker{
		HonestWorker: fl.NewHonestWorker(id, data, build, cfg, src),
		cabal:        cabal,
	}
}

// LocalTrain computes the honest gradient, then coordinates with the cabal
// and uploads the common perturbed update.
func (w *ColludingWorker) LocalTrain(round int, global []float64) gradvec.Vector {
	honest := w.HonestWorker.LocalTrain(round, global)
	return w.cabal.submit(round, w.ID(), honest)
}
