package attack

import (
	"sync"
	"testing"

	"fifl/internal/fl"
	"fifl/internal/gradvec"
	"fifl/internal/rng"
)

func TestCollusionCommonUpload(t *testing.T) {
	data, build, lc, global := setup(t)
	cabal := NewCollusion(0.3, 2)
	w1 := NewColludingWorker(0, data, build, lc, rng.New(61), cabal)
	w2 := NewColludingWorker(1, data, build, lc, rng.New(62), cabal)

	// Members must run concurrently (they block on each other).
	var g1, g2 gradvec.Vector
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); g1 = w1.LocalTrain(0, global) }()
	go func() { defer wg.Done(); g2 = w2.LocalTrain(0, global) }()
	wg.Wait()

	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatal("cabal members must upload identical gradients")
		}
	}
}

func TestCollusionStaysAlignedWithHonest(t *testing.T) {
	data, build, lc, global := setup(t)
	lc.BatchSize = 64
	cabal := NewCollusion(0.3, 2)
	w1 := NewColludingWorker(0, data, build, lc, rng.New(63), cabal)
	w2 := NewColludingWorker(1, data, build, lc, rng.New(64), cabal)
	ref := fl.NewHonestWorker(2, data, build, lc, rng.New(65))

	var g1 gradvec.Vector
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); g1 = w1.LocalTrain(0, global) }()
	go func() { defer wg.Done(); w2.LocalTrain(0, global) }()
	wg.Wait()

	honest := ref.LocalTrain(0, global)
	// The little-is-enough update must look honest: strongly positive
	// cosine with a genuine honest gradient.
	if cos := honest.CosSim(g1); cos < 0.3 {
		t.Fatalf("colluding update should stay aligned with honest gradients, cos=%v", cos)
	}
}

func TestCollusionMultiRound(t *testing.T) {
	data, build, lc, global := setup(t)
	cabal := NewCollusion(0.2, 2)
	w1 := NewColludingWorker(0, data, build, lc, rng.New(66), cabal)
	w2 := NewColludingWorker(1, data, build, lc, rng.New(67), cabal)

	// The round barrier must reset across rounds.
	for round := 0; round < 3; round++ {
		var g1, g2 gradvec.Vector
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); g1 = w1.LocalTrain(round, global) }()
		go func() { defer wg.Done(); g2 = w2.LocalTrain(round, global) }()
		wg.Wait()
		if g1.SqDist(g2) != 0 {
			t.Fatalf("round %d: members diverged", round)
		}
	}
}
