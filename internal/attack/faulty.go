package attack

import (
	"fifl/internal/faults"
	"fifl/internal/fl"
)

// CrashWorker wraps any worker with a crash window: in rounds [From, Until)
// the device is down and uploads nothing; outside the window it behaves as
// the wrapped worker. Until <= From crashes the worker forever from round
// From on. The fl runtime discovers the window through the faults.Faulty
// interface and records the rounds as StatusCrashed — the worker's
// LocalTrain is never invoked while it is down, matching a real crashed
// device that burns no compute.
type CrashWorker struct {
	fl.Worker
	From, Until int
}

// NewCrashWorker wraps w with a crash window over rounds [from, until).
func NewCrashWorker(w fl.Worker, from, until int) *CrashWorker {
	return &CrashWorker{Worker: w, From: from, Until: until}
}

// FaultAt implements faults.Faulty.
func (w *CrashWorker) FaultAt(round int) faults.Fault {
	if round >= w.From && (w.Until <= w.From || round < w.Until) {
		return faults.FaultCrash
	}
	return faults.FaultNone
}

// Straggler wraps any worker with a straggle window: in rounds
// [From, Until) the device is too slow to meet the round deadline and is
// recorded as StatusTimedOut; outside the window it behaves as the wrapped
// worker. Until <= From straggles forever from round From on. The
// slowdown is virtual — the runtime times the worker out on its
// deterministic schedule without spending wall-clock time, so experiments
// with straggling federations stay fast and reproducible.
type Straggler struct {
	fl.Worker
	From, Until int
}

// NewStraggler wraps w so it misses deadlines over rounds [from, until).
func NewStraggler(w fl.Worker, from, until int) *Straggler {
	return &Straggler{Worker: w, From: from, Until: until}
}

// FaultAt implements faults.Faulty.
func (w *Straggler) FaultAt(round int) faults.Fault {
	if round >= w.From && (w.Until <= w.From || round < w.Until) {
		return faults.FaultStraggle
	}
	return faults.FaultNone
}
