// Package attack implements the Byzantine worker models the paper
// evaluates against (§5.1): sign-flipping workers, data-poison workers,
// free-riders, and probabilistic attackers that only misbehave in a
// fraction p_a of iterations (the reputation experiment of Figure 11).
package attack

import (
	"fmt"

	"fifl/internal/dataset"
	"fifl/internal/fl"
	"fifl/internal/gradvec"
	"fifl/internal/nn"
	"fifl/internal/rng"
)

// SignFlipWorker trains honestly and then uploads −p_s·G_i, flipping the
// gradient's sign and amplifying it by the attack intensity p_s. Large p_s
// drives the global model toward divergence (the paper reports NaN loss at
// p_s ≥ 10).
type SignFlipWorker struct {
	*fl.HonestWorker
	Intensity float64 // p_s
}

// NewSignFlipWorker wraps an honest trainer with the sign-flipping upload.
func NewSignFlipWorker(id int, data *dataset.Dataset, build nn.Builder, cfg fl.LocalConfig, src *rng.Source, intensity float64) *SignFlipWorker {
	return &SignFlipWorker{
		HonestWorker: fl.NewHonestWorker(id, data, build, cfg, src),
		Intensity:    intensity,
	}
}

// LocalTrain computes the honest gradient and uploads its negation scaled
// by p_s.
func (w *SignFlipWorker) LocalTrain(round int, global []float64) gradvec.Vector {
	g := w.HonestWorker.LocalTrain(round, global)
	g.Scale(-w.Intensity)
	return g
}

// NewDataPoisonWorker returns a worker that trains honestly but on a local
// dataset in which a fraction p_d of the labels have been corrupted — the
// paper's data-poison attacker. Structurally it IS an honest worker; the
// damage comes entirely from the mislabelled data, which is exactly why
// these attackers are harder to detect than sign-flippers.
func NewDataPoisonWorker(id int, data *dataset.Dataset, build nn.Builder, cfg fl.LocalConfig, src *rng.Source, pd float64) *fl.HonestWorker {
	poisoned := data.PoisonLabels(src.SplitN("poison", id), pd)
	return fl.NewHonestWorker(id, poisoned, build, cfg, src)
}

// FreeRider uploads a fabricated gradient without training: small random
// noise shaped like a plausible update. Free-riders seek rewards without
// spending compute; their gradients carry no signal, so their contribution
// under FIFL is near the zero-gradient threshold b_h.
type FreeRider struct {
	id      int
	samples int
	scale   float64
	src     *rng.Source
}

// NewFreeRider creates a free-rider that claims the given sample count.
func NewFreeRider(id, claimedSamples int, noiseScale float64, src *rng.Source) *FreeRider {
	return &FreeRider{id: id, samples: claimedSamples, scale: noiseScale, src: src.SplitN("freerider", id)}
}

// ID returns the worker index.
func (w *FreeRider) ID() int { return w.id }

// NumSamples returns the (possibly inflated) claimed sample count.
func (w *FreeRider) NumSamples() int { return w.samples }

// LocalTrain fabricates a noise gradient without touching any data.
func (w *FreeRider) LocalTrain(round int, global []float64) gradvec.Vector {
	g := gradvec.Zeros(len(global))
	w.src.FillNormal(g, 0, w.scale)
	return g
}

// RNGDraws reports the noise stream's position for checkpointing
// (fl.ResumableWorker).
func (w *FreeRider) RNGDraws() uint64 { return w.src.Draws() }

// DiscardRNG fast-forwards the noise stream to a checkpointed position.
func (w *FreeRider) DiscardRNG(n uint64) error {
	if cur := w.src.Draws(); cur > n {
		return fmt.Errorf("attack: free-rider %d RNG already at %d draws, cannot rewind to %d", w.id, cur, n)
	}
	w.src.Discard(n - w.src.Draws())
	return nil
}

// Probabilistic wraps an honest worker and an attacker, misbehaving with
// probability p_a each round (Figure 11's attacker model). In honest rounds
// it uploads the honest gradient; in attack rounds it uploads the inner
// attacker's gradient.
type Probabilistic struct {
	Honest   fl.Worker
	Attacker fl.Worker
	PA       float64 // probability of attacking in a given round
	src      *rng.Source
}

// NewProbabilistic builds the mixture attacker. The honest and attacker
// workers should share the same ID and dataset.
func NewProbabilistic(honest, attacker fl.Worker, pa float64, src *rng.Source) *Probabilistic {
	return &Probabilistic{Honest: honest, Attacker: attacker, PA: pa, src: src.SplitN("prob", honest.ID())}
}

// ID returns the underlying worker index.
func (w *Probabilistic) ID() int { return w.Honest.ID() }

// NumSamples returns the honest worker's sample count.
func (w *Probabilistic) NumSamples() int { return w.Honest.NumSamples() }

// LocalTrain attacks with probability PA, otherwise trains honestly.
func (w *Probabilistic) LocalTrain(round int, global []float64) gradvec.Vector {
	if w.src.Bernoulli(w.PA) {
		return w.Attacker.LocalTrain(round, global)
	}
	return w.Honest.LocalTrain(round, global)
}
