package attack

import (
	"math"
	"testing"

	"fifl/internal/dataset"
	"fifl/internal/fl"
	"fifl/internal/nn"
	"fifl/internal/rng"
)

func setup(t *testing.T) (*dataset.Dataset, nn.Builder, fl.LocalConfig, []float64) {
	t.Helper()
	src := rng.New(50)
	build := nn.NewMLP(50, 28*28, []int{8}, 10)
	data := dataset.SynthDigits(src, 80)
	lc := fl.LocalConfig{K: 1, BatchSize: 8, LR: 0.05}
	return data, build, lc, build().ParamsVector()
}

func TestSignFlipNegatesAndScales(t *testing.T) {
	data, build, lc, global := setup(t)
	honest := fl.NewHonestWorker(0, data, build, lc, rng.New(9))
	flip := NewSignFlipWorker(0, data, build, lc, rng.New(9), 4)
	gh := honest.LocalTrain(0, global)
	ga := flip.LocalTrain(0, global)
	for i := range gh {
		if math.Abs(ga[i]+4*gh[i]) > 1e-12 {
			t.Fatalf("sign-flip gradient not -4x honest at %d: %v vs %v", i, ga[i], gh[i])
		}
	}
}

func TestSignFlipAntiCorrelated(t *testing.T) {
	data, build, lc, global := setup(t)
	honest := fl.NewHonestWorker(0, data, build, lc, rng.New(9))
	flip := NewSignFlipWorker(1, data, build, lc, rng.New(10), 2)
	gh := honest.LocalTrain(0, global)
	ga := flip.LocalTrain(0, global)
	if cos := gh.CosSim(ga); cos > -0.1 {
		t.Fatalf("sign-flip gradient should anti-correlate with honest, cos=%v", cos)
	}
}

func TestDataPoisonWorkerUsesPoisonedData(t *testing.T) {
	data, build, lc, _ := setup(t)
	w := NewDataPoisonWorker(0, data, build, lc, rng.New(11), 0.5)
	// The worker's data must differ from the original in ~50% of labels.
	diff := 0
	for i := range data.Labels {
		if w.Data.Labels[i] != data.Labels[i] {
			diff++
		}
	}
	if diff != 40 {
		t.Fatalf("poisoned labels: %d, want 40", diff)
	}
	if w.NumSamples() != data.Len() {
		t.Fatal("sample count changed by poisoning")
	}
}

func TestFreeRiderClaimsAndFabricates(t *testing.T) {
	_, _, _, global := setup(t)
	fr := NewFreeRider(3, 5000, 0.01, rng.New(12))
	if fr.ID() != 3 || fr.NumSamples() != 5000 {
		t.Fatal("free-rider identity wrong")
	}
	g := fr.LocalTrain(0, global)
	if len(g) != len(global) {
		t.Fatal("free-rider gradient length wrong")
	}
	// Fabricated noise has tiny norm relative to dimension and no NaNs.
	if g.HasNaN() {
		t.Fatal("free-rider gradient has NaN")
	}
	rms := g.Norm2() / math.Sqrt(float64(len(g)))
	if rms > 0.02 || rms < 0.005 {
		t.Fatalf("free-rider noise scale off: rms=%v", rms)
	}
	// Two rounds differ (it is noise, not a constant).
	g2 := fr.LocalTrain(1, global)
	if g.SqDist(g2) == 0 {
		t.Fatal("free-rider gradient constant across rounds")
	}
}

func TestProbabilisticMixture(t *testing.T) {
	data, build, lc, global := setup(t)
	honest := fl.NewHonestWorker(0, data, build, lc, rng.New(13))
	atk := NewSignFlipWorker(0, data, build, lc, rng.New(14), 3)
	p := NewProbabilistic(honest, atk, 0.5, rng.New(15))
	if p.ID() != 0 || p.NumSamples() != data.Len() {
		t.Fatal("probabilistic identity wrong")
	}
	// Count attack rounds by checking the sign of the correlation with a
	// fresh honest gradient.
	ref := fl.NewHonestWorker(0, data, build, lc, rng.New(16)).LocalTrain(0, global)
	attacks := 0
	const rounds = 60
	for i := 0; i < rounds; i++ {
		g := p.LocalTrain(i, global)
		if ref.CosSim(g) < 0 {
			attacks++
		}
	}
	frac := float64(attacks) / rounds
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("attack fraction %v, want ≈0.5", frac)
	}
}

func TestProbabilisticExtremes(t *testing.T) {
	data, build, lc, global := setup(t)
	// Large batches keep single-round gradient correlations sign-stable.
	lc.BatchSize = 64
	honest := fl.NewHonestWorker(0, data, build, lc, rng.New(17))
	atk := NewSignFlipWorker(0, data, build, lc, rng.New(18), 3)
	ref := fl.NewHonestWorker(0, data, build, lc, rng.New(19)).LocalTrain(0, global)

	never := NewProbabilistic(honest, atk, 0, rng.New(20))
	for i := 0; i < 10; i++ {
		if ref.CosSim(never.LocalTrain(i, global)) < 0 {
			t.Fatal("pa=0 must never attack")
		}
	}
	always := NewProbabilistic(honest, atk, 1, rng.New(21))
	for i := 0; i < 10; i++ {
		if ref.CosSim(always.LocalTrain(i, global)) > 0 {
			t.Fatal("pa=1 must always attack")
		}
	}
}
