package attack

import (
	"testing"

	"fifl/internal/dataset"
	"fifl/internal/faults"
	"fifl/internal/fl"
	"fifl/internal/nn"
	"fifl/internal/rng"
)

func faultySetup(t *testing.T, workers []fl.Worker, src *rng.Source, build nn.Builder) *fl.Engine {
	t.Helper()
	e, err := fl.NewEngine(fl.Config{Servers: 1, GlobalLR: 0.05}, build, workers, src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCrashWorkerWindow(t *testing.T) {
	w := NewCrashWorker(nil, 2, 5)
	for round, want := range map[int]faults.Fault{
		0: faults.FaultNone, 1: faults.FaultNone,
		2: faults.FaultCrash, 4: faults.FaultCrash,
		5: faults.FaultNone, 100: faults.FaultNone,
	} {
		if got := w.FaultAt(round); got != want {
			t.Fatalf("round %d: fault %v, want %v", round, got, want)
		}
	}
	// Until <= From crashes forever.
	forever := NewCrashWorker(nil, 3, 0)
	if forever.FaultAt(2) != faults.FaultNone || forever.FaultAt(1000) != faults.FaultCrash {
		t.Fatal("open-ended crash window wrong")
	}
}

func TestStragglerWindow(t *testing.T) {
	w := NewStraggler(nil, 1, 3)
	if w.FaultAt(0) != faults.FaultNone || w.FaultAt(1) != faults.FaultStraggle || w.FaultAt(3) != faults.FaultNone {
		t.Fatal("straggle window wrong")
	}
}

// TestCrashThenRecoverThroughRuntime drives a crash-then-recover worker
// through the engine and checks its upload statuses round by round.
func TestCrashThenRecoverThroughRuntime(t *testing.T) {
	src := rng.New(90)
	const n = 3
	build := nn.NewMLP(90, 28*28, []int{8}, 10)
	data := dataset.SynthDigits(src.Split("train"), n*60)
	parts := data.PartitionIID(src.Split("parts"), n)
	lc := fl.LocalConfig{K: 1, BatchSize: 8, LR: 0.05}
	workers := make([]fl.Worker, n)
	for i := 0; i < n-1; i++ {
		workers[i] = fl.NewHonestWorker(i, parts[i], build, lc, src)
	}
	honest := fl.NewHonestWorker(n-1, parts[n-1], build, lc, src)
	workers[n-1] = NewCrashWorker(honest, 1, 3)
	e := faultySetup(t, workers, src, build)

	for round := 0; round < 5; round++ {
		rr := e.Step(round)
		want := faults.StatusOK
		if round >= 1 && round < 3 {
			want = faults.StatusCrashed
		}
		if rr.Status[n-1] != want {
			t.Fatalf("round %d: status %v, want %v", round, rr.Status[n-1], want)
		}
		if (rr.Grads[n-1] == nil) != (want == faults.StatusCrashed) {
			t.Fatalf("round %d: gradient presence inconsistent with status", round)
		}
	}
}

// TestStragglerThroughRuntime: a Straggler is timed out on the virtual
// schedule — no wall clock, no LocalTrain invocation.
func TestStragglerThroughRuntime(t *testing.T) {
	src := rng.New(91)
	const n = 2
	build := nn.NewMLP(91, 28*28, []int{8}, 10)
	data := dataset.SynthDigits(src.Split("train"), n*60)
	parts := data.PartitionIID(src.Split("parts"), n)
	lc := fl.LocalConfig{K: 1, BatchSize: 8, LR: 0.05}
	workers := []fl.Worker{
		fl.NewHonestWorker(0, parts[0], build, lc, src),
		NewStraggler(fl.NewHonestWorker(1, parts[1], build, lc, src), 0, 2),
	}
	e := faultySetup(t, workers, src, build)
	rr := e.Step(0)
	if rr.Status[1] != faults.StatusTimedOut || rr.Grads[1] != nil {
		t.Fatalf("straggler round 0: status %v", rr.Status[1])
	}
	rr = e.Step(2)
	if rr.Status[1] != faults.StatusOK || rr.Grads[1] == nil {
		t.Fatalf("recovered round 2: status %v", rr.Status[1])
	}
}
