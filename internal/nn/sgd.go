package nn

import "fifl/internal/tensor"

// SGD is a stochastic gradient descent optimizer with optional momentum and
// L2 weight decay. It owns one velocity buffer per parameter tensor.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity []*tensor.Tensor
}

// NewSGD creates an optimizer with the given learning rate and no momentum.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step applies one update to params given grads. Velocity buffers are
// created lazily on first use and keyed by position, so a single SGD value
// must always be used with the same model.
func (o *SGD) Step(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic("nn: SGD params/grads length mismatch")
	}
	if o.velocity == nil && o.Momentum != 0 {
		o.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			o.velocity[i] = tensor.New(p.Shape()...)
		}
	}
	for i, p := range params {
		pd, gd := p.Data(), grads[i].Data()
		if o.Momentum != 0 {
			vd := o.velocity[i].Data()
			for j := range pd {
				g := gd[j] + o.WeightDecay*pd[j]
				vd[j] = o.Momentum*vd[j] + g
				pd[j] -= o.LR * vd[j]
			}
		} else {
			for j := range pd {
				g := gd[j] + o.WeightDecay*pd[j]
				pd[j] -= o.LR * g
			}
		}
	}
}
