package nn

import (
	"math"
	"testing"

	"fifl/internal/rng"
	"fifl/internal/tensor"
)

func TestSoftmaxCrossEntropyUniform(t *testing.T) {
	// Zero logits over C classes give loss ln(C).
	logits := tensor.New(4, 10)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 1, 2, 3})
	if math.Abs(loss-math.Log(10)) > 1e-12 {
		t.Fatalf("loss = %v, want ln(10)", loss)
	}
	// Gradient rows sum to zero.
	for b := 0; b < 4; b++ {
		s := 0.0
		for c := 0; c < 10; c++ {
			s += grad.At(b, c)
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("gradient row %d sums to %v", b, s)
		}
	}
}

func TestSoftmaxCrossEntropyConfident(t *testing.T) {
	logits := tensor.New(1, 3)
	logits.Set(50, 0, 0)
	loss, _ := SoftmaxCrossEntropy(logits, []int{0})
	if loss > 1e-12 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %v", loss)
	}
	lossWrong, _ := SoftmaxCrossEntropy(logits, []int{1})
	if lossWrong < 10 {
		t.Fatalf("confident wrong prediction should have large loss, got %v", lossWrong)
	}
}

func TestSoftmaxCrossEntropyStability(t *testing.T) {
	// Huge logits must not overflow thanks to max subtraction.
	logits := tensor.FromSlice([]float64{1e300, -1e300, 0}, 1, 3)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss overflow: %v", loss)
	}
	if grad.HasNaN() {
		t.Fatal("gradient overflow")
	}
}

func TestSoftmaxCrossEntropyLabelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SoftmaxCrossEntropy(tensor.New(2, 3), []int{0})
}

func TestArgmaxAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		1, 5, 0,
		9, 2, 3,
	}, 2, 3)
	preds := Argmax(logits)
	if preds[0] != 1 || preds[1] != 0 {
		t.Fatalf("Argmax = %v", preds)
	}
	if acc := Accuracy(logits, []int{1, 1}); acc != 0.5 {
		t.Fatalf("Accuracy = %v", acc)
	}
}

func TestParamsVectorRoundTrip(t *testing.T) {
	build := NewMLP(42, 10, []int{8}, 3)
	m1, m2 := build(), build()
	v1 := m1.ParamsVector()
	v2 := m2.ParamsVector()
	if len(v1) != len(v2) {
		t.Fatal("same builder must give same parameter count")
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("same seed must give identical replicas")
		}
	}
	// Perturb and round-trip.
	v1[3] = 99
	m1.SetParamsVector(v1)
	if m1.ParamsVector()[3] != 99 {
		t.Fatal("SetParamsVector did not stick")
	}
}

func TestApplyDelta(t *testing.T) {
	build := NewMLP(1, 4, nil, 2)
	m := build()
	before := m.ParamsVector()
	delta := make([]float64, len(before))
	for i := range delta {
		delta[i] = 1
	}
	m.ApplyDelta(0.5, delta)
	after := m.ParamsVector()
	for i := range after {
		if math.Abs(after[i]-(before[i]-0.5)) > 1e-12 {
			t.Fatalf("ApplyDelta wrong at %d", i)
		}
	}
}

func TestApplyDeltaLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMLP(1, 4, nil, 2)().ApplyDelta(1, []float64{1})
}

func TestSGDStepReducesLoss(t *testing.T) {
	src := rng.New(5)
	build := NewMLP(5, 8, []int{16}, 3)
	model := build()
	x := tensor.RandN(src, 1, 32, 8)
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = src.Intn(3)
	}
	opt := NewSGD(0.1)
	first := lossOf(model, x, labels)
	for it := 0; it < 50; it++ {
		model.ZeroGrads()
		logits := model.Forward(x, true)
		_, d := SoftmaxCrossEntropy(logits, labels)
		model.Backward(d)
		opt.Step(model.Params(), model.Grads())
	}
	last := lossOf(model, x, labels)
	if last >= first {
		t.Fatalf("SGD failed to reduce loss: %v -> %v", first, last)
	}
}

func TestSGDMomentumConvergesFaster(t *testing.T) {
	run := func(momentum float64) float64 {
		src := rng.New(6)
		model := NewMLP(6, 8, []int{16}, 3)()
		x := tensor.RandN(src, 1, 32, 8)
		labels := make([]int, 32)
		for i := range labels {
			labels[i] = src.Intn(3)
		}
		opt := &SGD{LR: 0.05, Momentum: momentum}
		for it := 0; it < 60; it++ {
			model.ZeroGrads()
			logits := model.Forward(x, true)
			_, d := SoftmaxCrossEntropy(logits, labels)
			model.Backward(d)
			opt.Step(model.Params(), model.Grads())
		}
		return lossOf(model, x, labels)
	}
	plain := run(0)
	mom := run(0.9)
	if mom >= plain {
		t.Fatalf("momentum should accelerate on this quadratic-ish problem: %v vs %v", mom, plain)
	}
}

func TestSGDWeightDecayShrinksNorm(t *testing.T) {
	model := NewMLP(7, 10, nil, 4)()
	opt := &SGD{LR: 0.1, WeightDecay: 0.5}
	// With zero gradients, weight decay alone must shrink parameters.
	model.ZeroGrads()
	before := 0.0
	for _, v := range model.ParamsVector() {
		before += v * v
	}
	opt.Step(model.Params(), model.Grads())
	after := 0.0
	for _, v := range model.ParamsVector() {
		after += v * v
	}
	if after >= before {
		t.Fatalf("weight decay failed to shrink norm: %v -> %v", before, after)
	}
}

func TestLeNetShapes(t *testing.T) {
	model := NewLeNet(1)()
	src := rng.New(2)
	x := tensor.RandN(src, 1, 2, 1, 28, 28)
	logits := model.Forward(x, true)
	if logits.Dim(0) != 2 || logits.Dim(1) != 10 {
		t.Fatalf("LeNet output shape %v", logits.Shape())
	}
	// Backward must run without shape panics.
	_, d := SoftmaxCrossEntropy(logits, []int{1, 2})
	model.Backward(d)
}

func TestMiniResNetShapes(t *testing.T) {
	model := NewMiniResNet(1)()
	src := rng.New(2)
	x := tensor.RandN(src, 1, 2, 3, 32, 32)
	logits := model.Forward(x, true)
	if logits.Dim(0) != 2 || logits.Dim(1) != 10 {
		t.Fatalf("MiniResNet output shape %v", logits.Shape())
	}
	_, d := SoftmaxCrossEntropy(logits, []int{4, 7})
	model.Backward(d)
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	src := rng.New(3)
	bn := NewBatchNorm2D(2, 4, 4)
	x := tensor.RandN(src, 3, 8, 2, 4, 4)
	// Train a few times to populate running stats.
	for i := 0; i < 10; i++ {
		bn.Forward(x, true)
	}
	// In eval mode the output must be deterministic w.r.t. the input and
	// must not update running stats.
	rm := append([]float64(nil), bn.RunMean.Data()...)
	y1 := bn.Forward(x, false)
	y2 := bn.Forward(x, false)
	for i := range y1.Data() {
		if y1.Data()[i] != y2.Data()[i] {
			t.Fatal("eval forward must be deterministic")
		}
	}
	for i, v := range bn.RunMean.Data() {
		if rm[i] != v {
			t.Fatal("eval forward must not update running stats")
		}
	}
}

func TestBatchNormNormalizesTrainBatch(t *testing.T) {
	src := rng.New(4)
	bn := NewBatchNorm2D(1, 8, 8)
	x := tensor.RandN(src, 5, 16, 1, 8, 8)
	y := bn.Forward(x, true)
	// With gamma=1 beta=0 the output per channel has ~0 mean, ~1 var.
	var sum, sum2 float64
	for _, v := range y.Data() {
		sum += v
		sum2 += v * v
	}
	n := float64(y.Size())
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-2 {
		t.Fatalf("normalized batch: mean=%v var=%v", mean, variance)
	}
}

func TestEvaluateBatching(t *testing.T) {
	src := rng.New(5)
	build := NewMLP(5, 6, nil, 3)
	model := build()
	x := tensor.RandN(src, 1, 10, 6)
	labels := make([]int, 10)
	// Evaluating in one batch or many must agree.
	a1, l1 := Evaluate(model, x, labels, 0)
	a2, l2 := Evaluate(model, x, labels, 3)
	if math.Abs(a1-a2) > 1e-12 || math.Abs(l1-l2) > 1e-9 {
		t.Fatalf("batched evaluation mismatch: acc %v/%v loss %v/%v", a1, a2, l1, l2)
	}
}

func TestNumParamsMatchesVector(t *testing.T) {
	model := NewLeNet(9)()
	if model.NumParams() != len(model.ParamsVector()) {
		t.Fatal("NumParams disagrees with ParamsVector length")
	}
	if model.NumParams() != len(model.GradsVector()) {
		t.Fatal("NumParams disagrees with GradsVector length")
	}
}

func TestZeroGrads(t *testing.T) {
	src := rng.New(6)
	model := NewMLP(6, 4, nil, 2)()
	x := tensor.RandN(src, 1, 3, 4)
	backwardGrads(model, x, []int{0, 1, 0})
	model.ZeroGrads()
	for _, g := range model.GradsVector() {
		if g != 0 {
			t.Fatal("ZeroGrads left nonzero gradient")
		}
	}
}

// TestGradAccumulation verifies Backward accumulates rather than
// overwrites: two backward passes double the gradient.
func TestGradAccumulation(t *testing.T) {
	src := rng.New(7)
	model := NewMLP(7, 4, nil, 2)()
	x := tensor.RandN(src, 1, 3, 4)
	labels := []int{0, 1, 0}
	g1 := append([]float64(nil), backwardGrads(model, x, labels)...)
	// Second pass without ZeroGrads.
	logits := model.Forward(x, true)
	_, d := SoftmaxCrossEntropy(logits, labels)
	model.Backward(d)
	g2 := model.GradsVector()
	for i := range g1 {
		if math.Abs(g2[i]-2*g1[i]) > 1e-9 {
			t.Fatalf("gradient not accumulated at %d: %v vs 2*%v", i, g2[i], g1[i])
		}
	}
}
