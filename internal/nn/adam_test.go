package nn

import (
	"math"
	"testing"

	"fifl/internal/rng"
	"fifl/internal/tensor"
)

func TestAdamReducesLoss(t *testing.T) {
	src := rng.New(71)
	model := NewMLP(71, 8, []int{16}, 3)()
	x := tensor.RandN(src, 1, 32, 8)
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = src.Intn(3)
	}
	opt := NewAdam(0.01)
	first := lossOf(model, x, labels)
	for it := 0; it < 60; it++ {
		model.ZeroGrads()
		logits := model.Forward(x, true)
		_, d := SoftmaxCrossEntropy(logits, labels)
		model.Backward(d)
		opt.Step(model.Params(), model.Grads())
	}
	last := lossOf(model, x, labels)
	if last >= first/2 {
		t.Fatalf("Adam barely reduced loss: %v -> %v", first, last)
	}
}

func TestAdamFirstStepIsLRSized(t *testing.T) {
	// With bias correction, the first step has magnitude ≈ LR per
	// coordinate regardless of gradient scale.
	model := NewSequential(NewLinear(rng.New(72), 2, 1))
	params := model.Params()
	grads := model.Grads()
	grads[0].Fill(1e-6) // tiny gradient
	before := params[0].Clone()
	opt := NewAdam(0.05)
	opt.Step(params, grads)
	step := math.Abs(params[0].Data()[0] - before.Data()[0])
	if math.Abs(step-0.05) > 0.01 {
		t.Fatalf("first Adam step %v, want ≈ LR 0.05", step)
	}
}

func TestAdamMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdam(0.1).Step([]*tensor.Tensor{tensor.New(2)}, nil)
}

func TestStepSchedule(t *testing.T) {
	s := StepSchedule{Every: 10, Gamma: 0.5}
	if s.Factor(0) != 1 || s.Factor(9) != 1 {
		t.Fatal("first decade should be 1")
	}
	if s.Factor(10) != 0.5 || s.Factor(25) != 0.25 {
		t.Fatalf("step decay wrong: %v %v", s.Factor(10), s.Factor(25))
	}
	if (StepSchedule{}).Factor(100) != 1 {
		t.Fatal("zero Every must be constant")
	}
}

func TestCosineSchedule(t *testing.T) {
	s := CosineSchedule{Period: 100, Floor: 0.1}
	if s.Factor(0) != 1 {
		t.Fatalf("cosine start %v", s.Factor(0))
	}
	mid := s.Factor(50)
	if math.Abs(mid-0.55) > 1e-9 {
		t.Fatalf("cosine midpoint %v, want 0.55", mid)
	}
	if s.Factor(100) != 0.1 || s.Factor(500) != 0.1 {
		t.Fatal("cosine must hold the floor after the period")
	}
	// Monotone non-increasing within the period.
	prev := math.Inf(1)
	for i := 0; i <= 100; i += 5 {
		f := s.Factor(i)
		if f > prev {
			t.Fatalf("cosine not monotone at %d", i)
		}
		prev = f
	}
}

func TestWarmupSchedule(t *testing.T) {
	s := WarmupSchedule{Steps: 10, Next: StepSchedule{Every: 5, Gamma: 0.5}}
	if s.Factor(0) != 0.1 || s.Factor(9) != 1 {
		t.Fatalf("warmup ramp wrong: %v %v", s.Factor(0), s.Factor(9))
	}
	// After warmup, the inner schedule sees rebased steps.
	if s.Factor(10) != 1 || s.Factor(15) != 0.5 {
		t.Fatalf("post-warmup delegation wrong: %v %v", s.Factor(10), s.Factor(15))
	}
	bare := WarmupSchedule{Steps: 5}
	if bare.Factor(100) != 1 {
		t.Fatal("nil Next must be constant 1")
	}
}

func TestScheduledSGDAppliesSchedule(t *testing.T) {
	model := NewSequential(NewLinear(rng.New(73), 2, 1))
	params, grads := model.Params(), model.Grads()
	grads[0].Fill(1)
	opt := NewScheduledSGD(1.0, 0, StepSchedule{Every: 1, Gamma: 0.5})
	w0 := params[0].Data()[0]
	opt.Step(params, grads) // factor 1 -> step 1.0
	w1 := params[0].Data()[0]
	grads[0].Fill(1)
	opt.Step(params, grads) // factor 0.5 -> step 0.5
	w2 := params[0].Data()[0]
	if math.Abs((w0-w1)-1.0) > 1e-12 || math.Abs((w1-w2)-0.5) > 1e-12 {
		t.Fatalf("scheduled steps %v %v, want 1.0 and 0.5", w0-w1, w1-w2)
	}
}
