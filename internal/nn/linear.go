package nn

import (
	"math"

	"fifl/internal/rng"
	"fifl/internal/tensor"
)

// Linear is a fully connected layer: y = x·Wᵀ + b with W of shape
// (out, in) and input of shape (batch, in).
type Linear struct {
	W, B   *tensor.Tensor
	dW, dB *tensor.Tensor
	x      *tensor.Tensor // cached input for backward
}

// NewLinear creates a fully connected layer with He-uniform initialization.
func NewLinear(src *rng.Source, in, out int) *Linear {
	l := &Linear{
		W:  tensor.New(out, in),
		B:  tensor.New(out),
		dW: tensor.New(out, in),
		dB: tensor.New(out),
	}
	bound := math.Sqrt(6.0 / float64(in))
	src.FillUniform(l.W.Data(), -bound, bound)
	return l
}

// Forward computes y = x·Wᵀ + b.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.x = x
	y := tensor.MatMulT2(x, l.W) // (batch, out)
	batch, out := y.Dim(0), y.Dim(1)
	yd, bd := y.Data(), l.B.Data()
	for i := 0; i < batch; i++ {
		row := yd[i*out : (i+1)*out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return y
}

// Backward accumulates dW = dYᵀ·x and dB = Σ rows(dY), and returns
// dX = dY·W.
func (l *Linear) Backward(dy *tensor.Tensor) *tensor.Tensor {
	l.dW.Add(tensor.MatMulT1(dy, l.x))
	batch, out := dy.Dim(0), dy.Dim(1)
	dyd, dbd := dy.Data(), l.dB.Data()
	for i := 0; i < batch; i++ {
		row := dyd[i*out : (i+1)*out]
		for j, v := range row {
			dbd[j] += v
		}
	}
	return tensor.MatMul(dy, l.W)
}

// Params returns {W, B}.
func (l *Linear) Params() []*tensor.Tensor { return []*tensor.Tensor{l.W, l.B} }

// Grads returns {dW, dB}.
func (l *Linear) Grads() []*tensor.Tensor { return []*tensor.Tensor{l.dW, l.dB} }
