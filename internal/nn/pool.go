package nn

import (
	"fifl/internal/parallel"
	"fifl/internal/tensor"
)

// MaxPool2D is a non-overlapping max pooling layer over
// (batch, C, H, W) inputs with a square window of the given size.
type MaxPool2D struct {
	Size    int
	C, H, W int // input geometry

	argmax []int // flat index into the input of each output's winner
}

// NewMaxPool2D creates a max-pool layer. H and W must be divisible by size.
func NewMaxPool2D(c, h, w, size int) *MaxPool2D {
	if h%size != 0 || w%size != 0 {
		panic("nn: MaxPool2D input not divisible by window size")
	}
	return &MaxPool2D{Size: size, C: c, H: h, W: w}
}

// Forward computes the max over each window and records winner positions.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch := x.Dim(0)
	oh, ow := m.H/m.Size, m.W/m.Size
	y := tensor.New(batch, m.C, oh, ow)
	if cap(m.argmax) < y.Size() {
		m.argmax = make([]int, y.Size())
	}
	m.argmax = m.argmax[:y.Size()]
	xd, yd := x.Data(), y.Data()
	parallel.ForChunked(batch*m.C, func(lo, hi int) {
		for bc := lo; bc < hi; bc++ {
			in := xd[bc*m.H*m.W : (bc+1)*m.H*m.W]
			outBase := bc * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := oy*m.Size*m.W + ox*m.Size
					best := in[bestIdx]
					for ky := 0; ky < m.Size; ky++ {
						rowBase := (oy*m.Size + ky) * m.W
						for kx := 0; kx < m.Size; kx++ {
							idx := rowBase + ox*m.Size + kx
							if in[idx] > best {
								best = in[idx]
								bestIdx = idx
							}
						}
					}
					yd[outBase+oy*ow+ox] = best
					m.argmax[outBase+oy*ow+ox] = bc*m.H*m.W + bestIdx
				}
			}
		}
	})
	return y
}

// Backward routes each output gradient to its winning input position.
func (m *MaxPool2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	batch := dy.Dim(0)
	dx := tensor.New(batch, m.C, m.H, m.W)
	dxd, dyd := dx.Data(), dy.Data()
	for i, v := range dyd {
		dxd[m.argmax[i]] += v
	}
	return dx
}

// Params returns nil: pooling has no parameters.
func (m *MaxPool2D) Params() []*tensor.Tensor { return nil }

// Grads returns nil: pooling has no parameters.
func (m *MaxPool2D) Grads() []*tensor.Tensor { return nil }

// GlobalAvgPool averages each channel over its spatial extent, turning
// (batch, C, H, W) into (batch, C). Used by the mini-ResNet head.
type GlobalAvgPool struct {
	C, H, W int
}

// NewGlobalAvgPool creates a global average pooling layer.
func NewGlobalAvgPool(c, h, w int) *GlobalAvgPool {
	return &GlobalAvgPool{C: c, H: h, W: w}
}

// Forward averages each channel map.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch := x.Dim(0)
	hw := g.H * g.W
	y := tensor.New(batch, g.C)
	xd, yd := x.Data(), y.Data()
	inv := 1.0 / float64(hw)
	for bc := 0; bc < batch*g.C; bc++ {
		s := 0.0
		for _, v := range xd[bc*hw : (bc+1)*hw] {
			s += v
		}
		yd[bc] = s * inv
	}
	return y
}

// Backward spreads each channel gradient uniformly over its spatial extent.
func (g *GlobalAvgPool) Backward(dy *tensor.Tensor) *tensor.Tensor {
	batch := dy.Dim(0)
	hw := g.H * g.W
	dx := tensor.New(batch, g.C, g.H, g.W)
	dxd, dyd := dx.Data(), dy.Data()
	inv := 1.0 / float64(hw)
	for bc := 0; bc < batch*g.C; bc++ {
		v := dyd[bc] * inv
		out := dxd[bc*hw : (bc+1)*hw]
		for i := range out {
			out[i] = v
		}
	}
	return dx
}

// Params returns nil: pooling has no parameters.
func (g *GlobalAvgPool) Params() []*tensor.Tensor { return nil }

// Grads returns nil: pooling has no parameters.
func (g *GlobalAvgPool) Grads() []*tensor.Tensor { return nil }

// Flatten reshapes (batch, ...) activations to (batch, features).
type Flatten struct {
	inShape []int
}

// NewFlatten creates a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all non-batch axes.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape()...)
	return x.Reshape(x.Dim(0), x.Size()/x.Dim(0))
}

// Backward restores the original shape.
func (f *Flatten) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return dy.Reshape(f.inShape...)
}

// Params returns nil: flatten has no parameters.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads returns nil: flatten has no parameters.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }
