package nn

import "fifl/internal/tensor"

// ReLU is the rectified linear activation, applied element-wise.
type ReLU struct {
	mask []bool
}

// NewReLU creates a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward zeroes negative activations and records the active mask.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x.Clone()
	if cap(r.mask) < y.Size() {
		r.mask = make([]bool, y.Size())
	}
	r.mask = r.mask[:y.Size()]
	yd := y.Data()
	for i, v := range yd {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			yd[i] = 0
		}
	}
	return y
}

// Backward masks the gradient by the recorded activation pattern.
func (r *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dx := dy.Clone()
	dxd := dx.Data()
	for i := range dxd {
		if !r.mask[i] {
			dxd[i] = 0
		}
	}
	return dx
}

// Params returns nil: ReLU has no parameters.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads returns nil: ReLU has no parameters.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }
