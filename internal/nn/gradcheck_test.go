package nn

import (
	"math"
	"testing"

	"fifl/internal/rng"
	"fifl/internal/tensor"
)

// lossOf runs a forward pass and returns the cross-entropy loss — the
// scalar function all gradient checks differentiate.
func lossOf(model *Sequential, x *tensor.Tensor, labels []int) float64 {
	logits := model.Forward(x, true)
	loss, _ := SoftmaxCrossEntropy(logits, labels)
	return loss
}

// backwardGrads runs forward+backward and returns the flat parameter
// gradient.
func backwardGrads(model *Sequential, x *tensor.Tensor, labels []int) []float64 {
	model.ZeroGrads()
	logits := model.Forward(x, true)
	_, d := SoftmaxCrossEntropy(logits, labels)
	model.Backward(d)
	return model.GradsVector()
}

// checkModelGradients compares analytic parameter gradients with central
// finite differences at a sample of coordinates.
func checkModelGradients(t *testing.T, model *Sequential, x *tensor.Tensor, labels []int, probes int, tol float64) {
	t.Helper()
	analytic := backwardGrads(model, x, labels)
	params := model.ParamsVector()
	src := rng.New(123)
	const eps = 1e-5
	for p := 0; p < probes; p++ {
		i := src.Intn(len(params))
		orig := params[i]
		params[i] = orig + eps
		model.SetParamsVector(params)
		lp := lossOf(model, x, labels)
		params[i] = orig - eps
		model.SetParamsVector(params)
		lm := lossOf(model, x, labels)
		params[i] = orig
		model.SetParamsVector(params)
		numeric := (lp - lm) / (2 * eps)
		if diff := math.Abs(numeric - analytic[i]); diff > tol*(1+math.Abs(numeric)) {
			t.Fatalf("gradient mismatch at param %d: analytic %v, numeric %v", i, analytic[i], numeric)
		}
	}
}

func TestLinearGradient(t *testing.T) {
	src := rng.New(1)
	model := NewSequential(NewLinear(src, 6, 4), NewReLU(), NewLinear(src.Split("2"), 4, 3))
	x := tensor.RandN(src, 1, 5, 6)
	labels := []int{0, 1, 2, 1, 0}
	checkModelGradients(t, model, x, labels, 40, 1e-4)
}

func TestConvGradient(t *testing.T) {
	src := rng.New(2)
	model := NewSequential(
		NewConv2D(src, tensor.ConvGeom{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}, 3),
		NewReLU(),
		NewFlatten(),
		NewLinear(src.Split("fc"), 3*6*6, 4),
	)
	x := tensor.RandN(src, 1, 3, 2, 6, 6)
	labels := []int{0, 3, 1}
	checkModelGradients(t, model, x, labels, 40, 1e-4)
}

func TestConvStridedGradient(t *testing.T) {
	src := rng.New(3)
	model := NewSequential(
		NewConv2D(src, tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 2, Pad: 1}, 2),
		NewFlatten(),
		NewLinear(src.Split("fc"), 2*4*4, 3),
	)
	x := tensor.RandN(src, 1, 2, 1, 8, 8)
	labels := []int{1, 2}
	checkModelGradients(t, model, x, labels, 40, 1e-4)
}

func TestMaxPoolGradient(t *testing.T) {
	src := rng.New(4)
	model := NewSequential(
		NewConv2D(src, tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}, 2),
		NewMaxPool2D(2, 8, 8, 2),
		NewFlatten(),
		NewLinear(src.Split("fc"), 2*4*4, 3),
	)
	x := tensor.RandN(src, 1, 2, 1, 8, 8)
	labels := []int{0, 2}
	checkModelGradients(t, model, x, labels, 40, 1e-4)
}

func TestBatchNormGradient(t *testing.T) {
	src := rng.New(5)
	model := NewSequential(
		NewConv2D(src, tensor.ConvGeom{InC: 1, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}, 2),
		NewBatchNorm2D(2, 6, 6),
		NewReLU(),
		NewFlatten(),
		NewLinear(src.Split("fc"), 2*6*6, 3),
	)
	x := tensor.RandN(src, 1, 4, 1, 6, 6)
	labels := []int{0, 1, 2, 1}
	checkModelGradients(t, model, x, labels, 40, 2e-4)
}

func TestGroupNormGradient(t *testing.T) {
	src := rng.New(55)
	model := NewSequential(
		NewConv2D(src, tensor.ConvGeom{InC: 1, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}, 4),
		NewGroupNorm(2, 4, 6, 6),
		NewReLU(),
		NewFlatten(),
		NewLinear(src.Split("fc"), 4*6*6, 3),
	)
	x := tensor.RandN(src, 1, 3, 1, 6, 6)
	labels := []int{0, 1, 2}
	checkModelGradients(t, model, x, labels, 50, 2e-4)
}

func TestGroupNormBadGroupsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGroupNorm(3, 4, 2, 2)
}

func TestResidualBlockGradient(t *testing.T) {
	src := rng.New(6)
	model := NewSequential(
		NewResidualBlock(src, 2, 4, 6, 6, 2), // projection shortcut, stride 2
		NewGlobalAvgPool(4, 3, 3),
		NewLinear(src.Split("fc"), 4, 3),
	)
	x := tensor.RandN(src, 1, 3, 2, 6, 6)
	labels := []int{0, 1, 2}
	checkModelGradients(t, model, x, labels, 50, 2e-4)
}

func TestResidualIdentityBlockGradient(t *testing.T) {
	src := rng.New(7)
	model := NewSequential(
		NewResidualBlock(src, 3, 3, 4, 4, 1), // identity shortcut
		NewGlobalAvgPool(3, 4, 4),
		NewLinear(src.Split("fc"), 3, 2),
	)
	x := tensor.RandN(src, 1, 2, 3, 4, 4)
	labels := []int{0, 1}
	checkModelGradients(t, model, x, labels, 40, 2e-4)
}

func TestGlobalAvgPoolGradient(t *testing.T) {
	src := rng.New(8)
	model := NewSequential(
		NewConv2D(src, tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 1, KW: 1, Stride: 1, Pad: 0}, 3),
		NewGlobalAvgPool(3, 4, 4),
		NewLinear(src.Split("fc"), 3, 2),
	)
	x := tensor.RandN(src, 1, 3, 1, 4, 4)
	labels := []int{0, 1, 1}
	checkModelGradients(t, model, x, labels, 30, 1e-4)
}

// TestInputGradient verifies the gradient w.r.t. the INPUT as well, using
// the residual network; this exercises every Backward return path.
func TestInputGradient(t *testing.T) {
	src := rng.New(9)
	model := NewSequential(
		NewConv2D(src, tensor.ConvGeom{InC: 1, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 1}, 2),
		NewReLU(),
		NewFlatten(),
		NewLinear(src.Split("fc"), 2*5*5, 3),
	)
	x := tensor.RandN(src, 1, 2, 1, 5, 5)
	labels := []int{0, 2}

	model.ZeroGrads()
	logits := model.Forward(x, true)
	_, d := SoftmaxCrossEntropy(logits, labels)
	dx := model.Backward(d)

	const eps = 1e-5
	probe := rng.New(10)
	for p := 0; p < 30; p++ {
		i := probe.Intn(x.Size())
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		lp := lossOf(model, x, labels)
		x.Data()[i] = orig - eps
		lm := lossOf(model, x, labels)
		x.Data()[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if diff := math.Abs(numeric - dx.Data()[i]); diff > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("input gradient mismatch at %d: analytic %v, numeric %v", i, dx.Data()[i], numeric)
		}
	}
}
