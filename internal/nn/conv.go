package nn

import (
	"math"
	"sync"

	"fifl/internal/parallel"
	"fifl/internal/rng"
	"fifl/internal/tensor"
)

// Conv2D is a 2-D convolution over (batch, inC, H, W) inputs, lowered onto
// matrix multiplication with im2col. Batch items are processed in parallel
// with per-goroutine scratch buffers; parameter gradients are accumulated
// into per-chunk buffers and merged once per chunk to avoid contention.
type Conv2D struct {
	Geom   tensor.ConvGeom
	OutC   int
	W      *tensor.Tensor // (outC, inC*kh*kw)
	B      *tensor.Tensor // (outC)
	dW, dB *tensor.Tensor

	x    *tensor.Tensor // cached input
	cols []float64      // cached im2col output for the whole batch
	mu   sync.Mutex     // guards dW/dB merges during parallel backward
}

// NewConv2D creates a convolution layer with He-uniform initialization.
// It panics if the geometry is invalid.
func NewConv2D(src *rng.Source, g tensor.ConvGeom, outC int) *Conv2D {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	k := g.InC * g.KH * g.KW
	c := &Conv2D{
		Geom: g,
		OutC: outC,
		W:    tensor.New(outC, k),
		B:    tensor.New(outC),
		dW:   tensor.New(outC, k),
		dB:   tensor.New(outC),
	}
	bound := math.Sqrt(6.0 / float64(k))
	src.FillUniform(c.W.Data(), -bound, bound)
	return c
}

// Forward computes the convolution for a (batch, inC, H, W) input and
// returns a (batch, outC, outH, outW) output.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := c.Geom
	batch := x.Dim(0)
	inSize := g.InC * g.InH * g.InW
	p := g.OutH() * g.OutW()
	k := g.InC * g.KH * g.KW
	y := tensor.New(batch, c.OutC, g.OutH(), g.OutW())
	if cap(c.cols) < batch*p*k {
		c.cols = make([]float64, batch*p*k)
	}
	c.cols = c.cols[:batch*p*k]
	c.x = x
	xd, yd, wd, bd := x.Data(), y.Data(), c.W.Data(), c.B.Data()
	parallel.ForChunked(batch, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			cols := c.cols[b*p*k : (b+1)*p*k]
			tensor.Im2Col(cols, xd[b*inSize:(b+1)*inSize], g)
			out := yd[b*c.OutC*p : (b+1)*c.OutC*p]
			// out[o*p+q] = bias[o] + Σ_k W[o,k]·cols[q,k]
			for o := 0; o < c.OutC; o++ {
				wo := wd[o*k : (o+1)*k]
				oo := out[o*p : (o+1)*p]
				bias := bd[o]
				for q := 0; q < p; q++ {
					cq := cols[q*k : (q+1)*k]
					s := bias
					for i, wv := range wo {
						s += wv * cq[i]
					}
					oo[q] = s
				}
			}
		}
	})
	return y
}

// Backward propagates a (batch, outC, outH, outW) gradient, accumulating
// dW and dB and returning the (batch, inC, H, W) input gradient.
func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	g := c.Geom
	batch := dy.Dim(0)
	inSize := g.InC * g.InH * g.InW
	p := g.OutH() * g.OutW()
	k := g.InC * g.KH * g.KW
	dx := tensor.New(batch, g.InC, g.InH, g.InW)
	dyd, dxd, wd := dy.Data(), dx.Data(), c.W.Data()
	parallel.ForChunked(batch, func(lo, hi int) {
		localDW := make([]float64, c.OutC*k)
		localDB := make([]float64, c.OutC)
		dCols := make([]float64, p*k)
		for b := lo; b < hi; b++ {
			cols := c.cols[b*p*k : (b+1)*p*k]
			dout := dyd[b*c.OutC*p : (b+1)*c.OutC*p]
			for i := range dCols {
				dCols[i] = 0
			}
			for o := 0; o < c.OutC; o++ {
				do := dout[o*p : (o+1)*p]
				wo := wd[o*k : (o+1)*k]
				dwo := localDW[o*k : (o+1)*k]
				for q := 0; q < p; q++ {
					gv := do[q]
					if gv == 0 {
						continue
					}
					localDB[o] += gv
					cq := cols[q*k : (q+1)*k]
					dcq := dCols[q*k : (q+1)*k]
					for i := range wo {
						dwo[i] += gv * cq[i]
						dcq[i] += gv * wo[i]
					}
				}
			}
			tensor.Col2Im(dxd[b*inSize:(b+1)*inSize], dCols, g)
		}
		c.mu.Lock()
		dwd, dbd := c.dW.Data(), c.dB.Data()
		for i, v := range localDW {
			dwd[i] += v
		}
		for i, v := range localDB {
			dbd[i] += v
		}
		c.mu.Unlock()
	})
	return dx
}

// Params returns {W, B}.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads returns {dW, dB}.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }
