package nn

import (
	"fifl/internal/rng"
	"fifl/internal/tensor"
)

// Builder constructs a model replica. The FL runtime gives every worker its
// own replica (layers cache activations and are not concurrency-safe), so
// architectures are passed around as builders rather than instances. All
// replicas built from the same seed have identical initial parameters.
type Builder func() *Sequential

// NewLeNet returns a builder for the LeNet architecture the paper trains on
// MNIST: two 5×5 convolutions with max pooling followed by three fully
// connected layers. Input shape is (batch, 1, 28, 28); output is 10 logits.
func NewLeNet(seed uint64) Builder {
	return func() *Sequential {
		src := rng.New(seed)
		return NewSequential(
			NewConv2D(src.Split("conv1"), tensor.ConvGeom{InC: 1, InH: 28, InW: 28, KH: 5, KW: 5, Stride: 1, Pad: 2}, 6),
			NewReLU(),
			NewMaxPool2D(6, 28, 28, 2),
			NewConv2D(src.Split("conv2"), tensor.ConvGeom{InC: 6, InH: 14, InW: 14, KH: 5, KW: 5, Stride: 1, Pad: 0}, 16),
			NewReLU(),
			NewMaxPool2D(16, 10, 10, 2),
			NewFlatten(),
			NewLinear(src.Split("fc1"), 16*5*5, 120),
			NewReLU(),
			NewLinear(src.Split("fc2"), 120, 84),
			NewReLU(),
			NewLinear(src.Split("fc3"), 84, 10),
		)
	}
}

// NewMiniResNet returns a builder for a three-stage residual network sized
// for 32×32×3 inputs — the downsized stand-in for the paper's CIFAR-10
// ResNet (see DESIGN.md, substitutions). Stages run at 16, 32 and 64
// channels with stride-2 transitions and identity/projection shortcuts,
// ending in global average pooling and a linear classifier.
func NewMiniResNet(seed uint64) Builder {
	return func() *Sequential {
		src := rng.New(seed)
		return NewSequential(
			NewConv2D(src.Split("stem"), tensor.ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}, 16),
			NewGroupNorm(groupsFor(16), 16, 32, 32),
			NewReLU(),
			NewResidualBlock(src.Split("res1"), 16, 16, 32, 32, 1),
			NewResidualBlock(src.Split("res2"), 16, 32, 32, 32, 2),
			NewResidualBlock(src.Split("res3"), 32, 64, 16, 16, 2),
			NewGlobalAvgPool(64, 8, 8),
			NewLinear(src.Split("head"), 64, 10),
		)
	}
}

// NewTinyResNet returns a builder for a two-stage residual network over
// 32×32×3 inputs, roughly 5× cheaper than NewMiniResNet. Quick-scale runs
// of the CIFAR-like experiments use it so a single CPU can train far
// enough for attack-damage orderings to surface; paper-scale runs use the
// full mini-ResNet.
func NewTinyResNet(seed uint64) Builder {
	return func() *Sequential {
		src := rng.New(seed)
		return NewSequential(
			NewConv2D(src.Split("stem"), tensor.ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 2, Pad: 1}, 8),
			NewGroupNorm(groupsFor(8), 8, 16, 16),
			NewReLU(),
			NewResidualBlock(src.Split("res1"), 8, 8, 16, 16, 1),
			NewResidualBlock(src.Split("res2"), 8, 16, 16, 16, 2),
			NewGlobalAvgPool(16, 8, 8),
			NewLinear(src.Split("head"), 16, 10),
		)
	}
}

// NewMLP returns a builder for a small multi-layer perceptron over flat
// inputs. It is the cheap model used by unit tests and the quickstart
// example where convolution cost is unnecessary.
func NewMLP(seed uint64, in int, hidden []int, out int) Builder {
	return func() *Sequential {
		src := rng.New(seed)
		// Accept image-shaped inputs too: flattening (batch, D) is a no-op.
		layers := []Layer{NewFlatten()}
		prev := in
		for i, h := range hidden {
			layers = append(layers, NewLinear(src.SplitN("hidden", i), prev, h), NewReLU())
			prev = h
		}
		layers = append(layers, NewLinear(src.Split("out"), prev, out))
		return NewSequential(layers...)
	}
}

// Evaluate runs the model in eval mode over the given examples in batches
// and returns mean accuracy and mean loss. x must be shaped with the batch
// axis first; labels must be parallel to the batch axis.
func Evaluate(model *Sequential, x *tensor.Tensor, labels []int, batchSize int) (acc, loss float64) {
	n := x.Dim(0)
	if n == 0 {
		return 0, 0
	}
	if batchSize <= 0 || batchSize > n {
		batchSize = n
	}
	itemSize := x.Size() / n
	var totalAcc, totalLoss float64
	count := 0
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		shape := append([]int{hi - lo}, x.Shape()[1:]...)
		batch := tensor.FromSlice(x.Data()[lo*itemSize:hi*itemSize], shape...)
		logits := model.Forward(batch, false)
		l, _ := SoftmaxCrossEntropy(logits, labels[lo:hi])
		totalAcc += Accuracy(logits, labels[lo:hi]) * float64(hi-lo)
		totalLoss += l * float64(hi-lo)
		count += hi - lo
	}
	return totalAcc / float64(count), totalLoss / float64(count)
}
