package nn

import (
	"bytes"
	"testing"

	"fifl/internal/rng"
)

// TestLoadCorruptedNeverPanics mutates random bytes of a valid checkpoint
// and verifies Load either succeeds (payload-only mutations can produce a
// structurally valid file with different weights) or fails with an error —
// but never panics. Truncations must always fail.
func TestLoadCorruptedNeverPanics(t *testing.T) {
	build := NewMLP(51, 12, []int{6}, 3)
	var buf bytes.Buffer
	if err := build().Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	src := rng.New(52)
	for trial := 0; trial < 200; trial++ {
		corrupted := append([]byte(nil), blob...)
		// Flip 1-4 random bytes.
		for k := 0; k < src.UniformInt(1, 4); k++ {
			corrupted[src.Intn(len(corrupted))] ^= byte(1 << src.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Load panicked on corrupted checkpoint: %v", r)
				}
			}()
			_ = build().Load(bytes.NewReader(corrupted))
		}()
	}
	// Truncations at every prefix length must error, not panic.
	for _, n := range []int{0, 1, 8, len(blob) / 3, len(blob) - 1} {
		if err := build().Load(bytes.NewReader(blob[:n])); err == nil {
			t.Fatalf("truncated checkpoint of %d bytes loaded successfully", n)
		}
	}
}
