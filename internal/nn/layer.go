// Package nn implements the neural-network training engine the FIFL
// reproduction runs on: layers with hand-written backward passes, the LeNet
// and mini-ResNet architectures the paper trains, softmax cross-entropy, and
// SGD. The engine exposes parameters and gradients as flat vectors so the
// federated-learning runtime can slice, ship and aggregate them exactly the
// way the paper's polycentric architecture does.
package nn

import (
	"fifl/internal/tensor"
)

// Layer is one differentiable stage of a network. Forward consumes the
// previous activation and caches whatever Backward needs; Backward consumes
// the gradient w.r.t. the layer output and returns the gradient w.r.t. the
// layer input, accumulating parameter gradients internally.
//
// Layers are stateful (they cache activations between Forward and Backward)
// and therefore not safe for concurrent use; the FL runtime gives every
// worker its own model replica.
type Layer interface {
	// Forward computes the layer output. train toggles training-time
	// behaviour (e.g. BatchNorm batch statistics).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward computes the input gradient from the output gradient and
	// accumulates parameter gradients.
	Backward(dy *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameter tensors (possibly
	// empty). The returned tensors alias layer state.
	Params() []*tensor.Tensor
	// Grads returns gradient tensors parallel to Params.
	Grads() []*tensor.Tensor
}

// Sequential chains layers into a network.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a network from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs all layers in reverse order.
func (s *Sequential) Backward(dy *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(dy)
	}
	return dy
}

// Params returns every trainable tensor in layer order.
func (s *Sequential) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Grads returns every gradient tensor in layer order, parallel to Params.
func (s *Sequential) Grads() []*tensor.Tensor {
	var gs []*tensor.Tensor
	for _, l := range s.Layers {
		gs = append(gs, l.Grads()...)
	}
	return gs
}

// ZeroGrads resets all accumulated gradients.
func (s *Sequential) ZeroGrads() {
	for _, g := range s.Grads() {
		g.Zero()
	}
}

// NumParams returns the total number of scalar parameters.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += p.Size()
	}
	return n
}

// ParamsVector copies all parameters into one flat vector in layer order.
func (s *Sequential) ParamsVector() []float64 {
	out := make([]float64, 0, s.NumParams())
	for _, p := range s.Params() {
		out = append(out, p.Data()...)
	}
	return out
}

// SetParamsVector overwrites all parameters from a flat vector produced by
// ParamsVector on a model of identical architecture. It panics on length
// mismatch.
func (s *Sequential) SetParamsVector(v []float64) {
	off := 0
	for _, p := range s.Params() {
		n := copy(p.Data(), v[off:off+p.Size()])
		off += n
	}
	if off != len(v) {
		panic("nn: SetParamsVector length mismatch")
	}
}

// GradsVector copies all accumulated gradients into one flat vector in
// layer order, parallel to ParamsVector.
func (s *Sequential) GradsVector() []float64 {
	out := make([]float64, 0, s.NumParams())
	for _, g := range s.Grads() {
		out = append(out, g.Data()...)
	}
	return out
}

// ApplyDelta subtracts scale*delta from the parameters, i.e. performs the
// update θ ← θ − scale·delta for a flat delta vector (Eq. 3 of the paper
// with delta = the aggregated global gradient).
func (s *Sequential) ApplyDelta(scale float64, delta []float64) {
	off := 0
	for _, p := range s.Params() {
		d := p.Data()
		for i := range d {
			d[i] -= scale * delta[off+i]
		}
		off += len(d)
	}
	if off != len(delta) {
		panic("nn: ApplyDelta length mismatch")
	}
}
