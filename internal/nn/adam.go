package nn

import (
	"math"

	"fifl/internal/tensor"
)

// Adam is the Adam optimizer (Kingma & Ba): per-coordinate first/second
// moment estimates with bias correction. The paper trains with SGD; Adam is
// provided for downstream users of the library and for the warm-up phases
// where faster convergence saves simulation time.
type Adam struct {
	LR          float64
	Beta1       float64 // 0 means the default 0.9
	Beta2       float64 // 0 means the default 0.999
	Eps         float64 // 0 means the default 1e-8
	WeightDecay float64

	step int
	m, v []*tensor.Tensor
}

// NewAdam creates an Adam optimizer with standard hyperparameters.
func NewAdam(lr float64) *Adam { return &Adam{LR: lr} }

// Step applies one Adam update to params given grads. Moment buffers are
// created lazily and keyed by position, so a single Adam value must always
// be used with the same model.
func (o *Adam) Step(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic("nn: Adam params/grads length mismatch")
	}
	b1, b2, eps := o.Beta1, o.Beta2, o.Eps
	if b1 == 0 {
		b1 = 0.9
	}
	if b2 == 0 {
		b2 = 0.999
	}
	if eps == 0 {
		eps = 1e-8
	}
	if o.m == nil {
		o.m = make([]*tensor.Tensor, len(params))
		o.v = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			o.m[i] = tensor.New(p.Shape()...)
			o.v[i] = tensor.New(p.Shape()...)
		}
	}
	o.step++
	c1 := 1 - math.Pow(b1, float64(o.step))
	c2 := 1 - math.Pow(b2, float64(o.step))
	for i, p := range params {
		pd, gd := p.Data(), grads[i].Data()
		md, vd := o.m[i].Data(), o.v[i].Data()
		for j := range pd {
			g := gd[j] + o.WeightDecay*pd[j]
			md[j] = b1*md[j] + (1-b1)*g
			vd[j] = b2*vd[j] + (1-b2)*g*g
			mHat := md[j] / c1
			vHat := vd[j] / c2
			pd[j] -= o.LR * mHat / (math.Sqrt(vHat) + eps)
		}
	}
}

// Schedule maps a step index to a learning-rate multiplier.
type Schedule interface {
	// Factor returns the multiplier applied to the base learning rate at
	// the given zero-based step.
	Factor(step int) float64
}

// ConstantSchedule keeps the learning rate fixed.
type ConstantSchedule struct{}

// Factor implements Schedule.
func (ConstantSchedule) Factor(int) float64 { return 1 }

// StepSchedule multiplies the rate by Gamma every Every steps.
type StepSchedule struct {
	Every int
	Gamma float64
}

// Factor implements Schedule.
func (s StepSchedule) Factor(step int) float64 {
	if s.Every <= 0 {
		return 1
	}
	return math.Pow(s.Gamma, float64(step/s.Every))
}

// CosineSchedule anneals the multiplier from 1 to Floor over Period steps
// following a half cosine, then holds Floor.
type CosineSchedule struct {
	Period int
	Floor  float64
}

// Factor implements Schedule.
func (s CosineSchedule) Factor(step int) float64 {
	if s.Period <= 0 || step >= s.Period {
		return s.Floor
	}
	cos := 0.5 * (1 + math.Cos(math.Pi*float64(step)/float64(s.Period)))
	return s.Floor + (1-s.Floor)*cos
}

// WarmupSchedule ramps linearly from 0 to 1 over Steps, then delegates to
// Next (nil means constant 1 afterwards).
type WarmupSchedule struct {
	Steps int
	Next  Schedule
}

// Factor implements Schedule.
func (s WarmupSchedule) Factor(step int) float64 {
	if s.Steps > 0 && step < s.Steps {
		return float64(step+1) / float64(s.Steps)
	}
	if s.Next == nil {
		return 1
	}
	return s.Next.Factor(step - s.Steps)
}

// ScheduledSGD wraps SGD with a schedule: the effective rate at step t is
// BaseLR · Schedule.Factor(t).
type ScheduledSGD struct {
	SGD      *SGD
	BaseLR   float64
	Schedule Schedule
	step     int
}

// NewScheduledSGD builds a scheduled SGD optimizer.
func NewScheduledSGD(baseLR float64, momentum float64, sched Schedule) *ScheduledSGD {
	return &ScheduledSGD{
		SGD:      &SGD{LR: baseLR, Momentum: momentum},
		BaseLR:   baseLR,
		Schedule: sched,
	}
}

// Step applies one update at the scheduled rate.
func (o *ScheduledSGD) Step(params, grads []*tensor.Tensor) {
	o.SGD.LR = o.BaseLR * o.Schedule.Factor(o.step)
	o.step++
	o.SGD.Step(params, grads)
}
