package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"fifl/internal/tensor"
)

// The checkpoint format is a minimal, architecture-agnostic binary layout:
// a magic header, the number of state tensors, then each tensor's rank,
// shape and float64 payload in little-endian order. The architecture
// itself is NOT serialized — a checkpoint is loaded into a model built by
// the same Builder, and every shape is verified on load. This matches how
// the FL runtime already treats models (parameters move as flat vectors,
// architecture travels as a Builder).

// checkpointMagic identifies the format and its version.
const checkpointMagic = "FIFLCKPT1"

// stateTensors returns every tensor that defines the model's behaviour:
// trainable parameters plus non-trainable state (BatchNorm running
// statistics), in deterministic layer order.
func (s *Sequential) stateTensors() []*tensor.Tensor {
	var ts []*tensor.Tensor
	for _, l := range s.Layers {
		ts = append(ts, l.Params()...)
		// BatchNorm is the only layer with non-parameter state. The
		// residual blocks use GroupNorm (stateless beyond parameters), so
		// no recursion is needed.
		if bn, ok := l.(*BatchNorm2D); ok {
			ts = append(ts, bn.RunMean, bn.RunVar)
		}
	}
	return ts
}

// Save writes the model's full state (parameters and batch-norm running
// statistics) to w in the FIFL checkpoint format.
func (s *Sequential) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return fmt.Errorf("nn: writing checkpoint header: %w", err)
	}
	ts := s.stateTensors()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(ts))); err != nil {
		return fmt.Errorf("nn: writing tensor count: %w", err)
	}
	for i, t := range ts {
		shape := t.Shape()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(shape))); err != nil {
			return fmt.Errorf("nn: writing tensor %d rank: %w", i, err)
		}
		for _, d := range shape {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return fmt.Errorf("nn: writing tensor %d shape: %w", i, err)
			}
		}
		var buf [8]byte
		for _, v := range t.Data() {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			if _, err := bw.Write(buf[:]); err != nil {
				return fmt.Errorf("nn: writing tensor %d data: %w", i, err)
			}
		}
	}
	return bw.Flush()
}

// Load restores a model's state from r. The model must have been built by
// the same Builder that produced the checkpoint; every tensor shape is
// verified and a descriptive error returned on mismatch.
func (s *Sequential) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	head := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return fmt.Errorf("nn: reading checkpoint header: %w", err)
	}
	if string(head) != checkpointMagic {
		return fmt.Errorf("nn: bad checkpoint header %q", head)
	}
	ts := s.stateTensors()
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: reading tensor count: %w", err)
	}
	if int(count) != len(ts) {
		return fmt.Errorf("nn: checkpoint has %d tensors, model has %d", count, len(ts))
	}
	for i, t := range ts {
		var rank uint32
		if err := binary.Read(br, binary.LittleEndian, &rank); err != nil {
			return fmt.Errorf("nn: reading tensor %d rank: %w", i, err)
		}
		if int(rank) != t.Rank() {
			return fmt.Errorf("nn: tensor %d rank %d, model expects %d", i, rank, t.Rank())
		}
		for a := 0; a < int(rank); a++ {
			var d uint32
			if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
				return fmt.Errorf("nn: reading tensor %d shape: %w", i, err)
			}
			if int(d) != t.Dim(a) {
				return fmt.Errorf("nn: tensor %d axis %d is %d, model expects %d", i, a, d, t.Dim(a))
			}
		}
		data := t.Data()
		var buf [8]byte
		for j := range data {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return fmt.Errorf("nn: reading tensor %d data: %w", i, err)
			}
			data[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
		}
	}
	return nil
}
