package nn

import (
	"fifl/internal/rng"
	"fifl/internal/tensor"
)

// ResidualBlock is a basic two-convolution residual block as in ResNet:
//
//	y = ReLU( Norm(conv2(ReLU(Norm(conv1(x))))) + shortcut(x) )
//
// When the block changes channel count or stride, the shortcut is a 1×1
// strided convolution followed by normalization; otherwise it is the
// identity. Normalization is GroupNorm rather than BatchNorm so the whole
// model state travels in the parameter vector (see GroupNorm's doc — this
// matters for federated parameter exchange).
type ResidualBlock struct {
	conv1 *Conv2D
	bn1   *GroupNorm
	relu1 *ReLU
	conv2 *Conv2D
	bn2   *GroupNorm
	relu2 *ReLU

	proj   *Conv2D // nil for identity shortcut
	projBN *GroupNorm

	shortcut *tensor.Tensor // cached shortcut activation
}

// NewResidualBlock builds a block that maps (inC, h, w) to
// (outC, h/stride, w/stride). h and w must be divisible by stride.
func NewResidualBlock(src *rng.Source, inC, outC, h, w, stride int) *ResidualBlock {
	oh, ow := h/stride, w/stride
	b := &ResidualBlock{
		conv1: NewConv2D(src, tensor.ConvGeom{InC: inC, InH: h, InW: w, KH: 3, KW: 3, Stride: stride, Pad: 1}, outC),
		bn1:   NewGroupNorm(groupsFor(outC), outC, oh, ow),
		relu1: NewReLU(),
		conv2: NewConv2D(src, tensor.ConvGeom{InC: outC, InH: oh, InW: ow, KH: 3, KW: 3, Stride: 1, Pad: 1}, outC),
		bn2:   NewGroupNorm(groupsFor(outC), outC, oh, ow),
		relu2: NewReLU(),
	}
	if inC != outC || stride != 1 {
		b.proj = NewConv2D(src, tensor.ConvGeom{InC: inC, InH: h, InW: w, KH: 1, KW: 1, Stride: stride, Pad: 0}, outC)
		b.projBN = NewGroupNorm(groupsFor(outC), outC, oh, ow)
	}
	return b
}

// Forward runs the residual computation.
func (b *ResidualBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := b.conv1.Forward(x, train)
	main = b.bn1.Forward(main, train)
	main = b.relu1.Forward(main, train)
	main = b.conv2.Forward(main, train)
	main = b.bn2.Forward(main, train)

	var sc *tensor.Tensor
	if b.proj != nil {
		sc = b.proj.Forward(x, train)
		sc = b.projBN.Forward(sc, train)
	} else {
		sc = x
	}
	b.shortcut = sc
	sum := main.Clone().Add(sc)
	return b.relu2.Forward(sum, train)
}

// Backward propagates through both branches and sums the input gradients.
func (b *ResidualBlock) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dSum := b.relu2.Backward(dy)
	// main branch
	d := b.bn2.Backward(dSum)
	d = b.conv2.Backward(d)
	d = b.relu1.Backward(d)
	d = b.bn1.Backward(d)
	dxMain := b.conv1.Backward(d)
	// shortcut branch
	if b.proj != nil {
		ds := b.projBN.Backward(dSum)
		dxShort := b.proj.Backward(ds)
		return dxMain.Add(dxShort)
	}
	return dxMain.Add(dSum)
}

// Params returns the parameters of all sublayers.
func (b *ResidualBlock) Params() []*tensor.Tensor {
	ps := append(b.conv1.Params(), b.bn1.Params()...)
	ps = append(ps, b.conv2.Params()...)
	ps = append(ps, b.bn2.Params()...)
	if b.proj != nil {
		ps = append(ps, b.proj.Params()...)
		ps = append(ps, b.projBN.Params()...)
	}
	return ps
}

// Grads returns the gradients of all sublayers, parallel to Params.
func (b *ResidualBlock) Grads() []*tensor.Tensor {
	gs := append(b.conv1.Grads(), b.bn1.Grads()...)
	gs = append(gs, b.conv2.Grads()...)
	gs = append(gs, b.bn2.Grads()...)
	if b.proj != nil {
		gs = append(gs, b.proj.Grads()...)
		gs = append(gs, b.projBN.Grads()...)
	}
	return gs
}
