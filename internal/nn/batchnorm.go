package nn

import (
	"math"

	"fifl/internal/tensor"
)

// BatchNorm2D normalizes each channel of a (batch, C, H, W) activation over
// the batch and spatial dimensions, then applies a learned per-channel
// affine transform. Training mode uses batch statistics and maintains an
// exponential moving average for evaluation mode.
type BatchNorm2D struct {
	C, H, W  int
	Eps      float64
	Momentum float64

	Gamma, Beta *tensor.Tensor // learned scale and shift, shape (C)
	dG, dB      *tensor.Tensor
	RunMean     *tensor.Tensor // running statistics for eval mode
	RunVar      *tensor.Tensor

	// caches for backward
	xhat    []float64
	invStd  []float64
	lastN   int
	batched bool
}

// NewBatchNorm2D creates a batch-norm layer with gamma=1, beta=0.
func NewBatchNorm2D(c, h, w int) *BatchNorm2D {
	return &BatchNorm2D{
		C: c, H: h, W: w,
		Eps:      1e-5,
		Momentum: 0.1,
		Gamma:    tensor.Full(1, c),
		Beta:     tensor.New(c),
		dG:       tensor.New(c),
		dB:       tensor.New(c),
		RunMean:  tensor.New(c),
		RunVar:   tensor.Full(1, c),
	}
}

// Forward normalizes per channel. In training mode the batch statistics are
// used and folded into the running averages; in eval mode the running
// averages are used.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch := x.Dim(0)
	hw := bn.H * bn.W
	n := batch * hw
	y := tensor.New(batch, bn.C, bn.H, bn.W)
	if cap(bn.xhat) < x.Size() {
		bn.xhat = make([]float64, x.Size())
	}
	bn.xhat = bn.xhat[:x.Size()]
	if cap(bn.invStd) < bn.C {
		bn.invStd = make([]float64, bn.C)
	}
	bn.invStd = bn.invStd[:bn.C]
	bn.lastN = n
	bn.batched = train

	xd, yd := x.Data(), y.Data()
	gd, bd := bn.Gamma.Data(), bn.Beta.Data()
	rm, rv := bn.RunMean.Data(), bn.RunVar.Data()

	for c := 0; c < bn.C; c++ {
		var mean, varr float64
		if train {
			s := 0.0
			for b := 0; b < batch; b++ {
				off := (b*bn.C + c) * hw
				for _, v := range xd[off : off+hw] {
					s += v
				}
			}
			mean = s / float64(n)
			s2 := 0.0
			for b := 0; b < batch; b++ {
				off := (b*bn.C + c) * hw
				for _, v := range xd[off : off+hw] {
					d := v - mean
					s2 += d * d
				}
			}
			varr = s2 / float64(n)
			rm[c] = (1-bn.Momentum)*rm[c] + bn.Momentum*mean
			rv[c] = (1-bn.Momentum)*rv[c] + bn.Momentum*varr
		} else {
			mean, varr = rm[c], rv[c]
		}
		inv := 1.0 / math.Sqrt(varr+bn.Eps)
		bn.invStd[c] = inv
		g, be := gd[c], bd[c]
		for b := 0; b < batch; b++ {
			off := (b*bn.C + c) * hw
			for i := off; i < off+hw; i++ {
				xh := (xd[i] - mean) * inv
				bn.xhat[i] = xh
				yd[i] = g*xh + be
			}
		}
	}
	return y
}

// Backward implements the standard batch-norm gradient. In eval mode the
// statistics are treated as constants.
func (bn *BatchNorm2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	batch := dy.Dim(0)
	hw := bn.H * bn.W
	n := float64(bn.lastN)
	dx := tensor.New(batch, bn.C, bn.H, bn.W)
	dyd, dxd := dy.Data(), dx.Data()
	gd := bn.Gamma.Data()
	dgd, dbd := bn.dG.Data(), bn.dB.Data()

	for c := 0; c < bn.C; c++ {
		var sumDy, sumDyXhat float64
		for b := 0; b < batch; b++ {
			off := (b*bn.C + c) * hw
			for i := off; i < off+hw; i++ {
				sumDy += dyd[i]
				sumDyXhat += dyd[i] * bn.xhat[i]
			}
		}
		dgd[c] += sumDyXhat
		dbd[c] += sumDy
		inv := bn.invStd[c]
		g := gd[c]
		if bn.batched {
			for b := 0; b < batch; b++ {
				off := (b*bn.C + c) * hw
				for i := off; i < off+hw; i++ {
					dxd[i] = g * inv / n * (n*dyd[i] - sumDy - bn.xhat[i]*sumDyXhat)
				}
			}
		} else {
			for b := 0; b < batch; b++ {
				off := (b*bn.C + c) * hw
				for i := off; i < off+hw; i++ {
					dxd[i] = g * inv * dyd[i]
				}
			}
		}
	}
	return dx
}

// Params returns {Gamma, Beta}.
func (bn *BatchNorm2D) Params() []*tensor.Tensor { return []*tensor.Tensor{bn.Gamma, bn.Beta} }

// Grads returns {dGamma, dBeta}.
func (bn *BatchNorm2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{bn.dG, bn.dB} }
