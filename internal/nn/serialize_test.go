package nn

import (
	"bytes"
	"strings"
	"testing"

	"fifl/internal/rng"
	"fifl/internal/tensor"
)

func TestSaveLoadRoundTripMLP(t *testing.T) {
	build := NewMLP(21, 28*28, []int{16}, 10)
	src := rng.New(22)
	model := build()
	// Train a little so the state is non-trivial.
	x := tensor.RandN(src, 1, 8, 28*28)
	labels := make([]int, 8)
	opt := NewSGD(0.1)
	for i := 0; i < 5; i++ {
		model.ZeroGrads()
		logits := model.Forward(x, true)
		_, d := SoftmaxCrossEntropy(logits, labels)
		model.Backward(d)
		opt.Step(model.Params(), model.Grads())
	}

	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := build()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	a, b := model.ParamsVector(), restored.ParamsVector()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parameter %d differs after round trip", i)
		}
	}
}

func TestSaveLoadRoundTripResNet(t *testing.T) {
	build := NewMiniResNet(23)
	src := rng.New(24)
	model := build()
	x := tensor.RandN(src, 1, 2, 3, 32, 32)
	model.Forward(x, true)

	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := build()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	y1 := model.Forward(x, false)
	y2 := restored.Forward(x, false)
	for i := range y1.Data() {
		if y1.Data()[i] != y2.Data()[i] {
			t.Fatal("eval output differs after round trip")
		}
	}
}

func TestSaveLoadBatchNormRunningStats(t *testing.T) {
	// A model with a standalone BatchNorm layer: its running statistics
	// live outside Params() and must survive the round trip.
	build := func() *Sequential {
		src := rng.New(77)
		return NewSequential(
			NewConv2D(src, tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}, 4),
			NewBatchNorm2D(4, 8, 8),
			NewReLU(),
			NewFlatten(),
			NewLinear(src.Split("fc"), 4*8*8, 3),
		)
	}
	src := rng.New(25)
	model := build()
	x := tensor.RandN(src, 1, 6, 1, 8, 8)
	for i := 0; i < 5; i++ {
		model.Forward(x, true) // populate running stats
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := build()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	y1 := model.Forward(x, false)
	y2 := restored.Forward(x, false)
	for i := range y1.Data() {
		if y1.Data()[i] != y2.Data()[i] {
			t.Fatal("eval output differs after round trip: running stats lost")
		}
	}
}

func TestLoadWrongArchitectureFails(t *testing.T) {
	var buf bytes.Buffer
	if err := NewMLP(25, 10, []int{4}, 2)().Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := NewMLP(25, 12, []int{4}, 2)()
	if err := other.Load(&buf); err == nil {
		t.Fatal("loading into a mismatched architecture must fail")
	}
}

func TestLoadWrongTensorCountFails(t *testing.T) {
	var buf bytes.Buffer
	if err := NewMLP(26, 10, []int{4}, 2)().Save(&buf); err != nil {
		t.Fatal(err)
	}
	// An MLP with an extra hidden layer has more state tensors.
	other := NewMLP(26, 10, []int{4, 4}, 2)()
	err := other.Load(&buf)
	if err == nil || !strings.Contains(err.Error(), "tensors") {
		t.Fatalf("want tensor-count error, got %v", err)
	}
}

func TestLoadBadHeaderFails(t *testing.T) {
	model := NewMLP(27, 4, nil, 2)()
	if err := model.Load(strings.NewReader("NOTACHECKPOINT")); err == nil {
		t.Fatal("bad header must fail")
	}
}

func TestLoadTruncatedFails(t *testing.T) {
	var buf bytes.Buffer
	model := NewMLP(28, 10, []int{4}, 2)()
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if err := model.Load(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated checkpoint must fail")
	}
}

func TestStateTensorsIncludeRunningStats(t *testing.T) {
	// The mini-ResNet uses GroupNorm throughout: no state beyond params.
	model := NewMiniResNet(29)()
	if n, p := len(model.stateTensors()), len(model.Params()); n != p {
		t.Fatalf("stateTensors = %d, params = %d: GroupNorm models carry no extra state", n, p)
	}
	// A standalone BatchNorm contributes exactly 2 running-stat tensors.
	bnModel := NewSequential(NewBatchNorm2D(2, 4, 4))
	if n, p := len(bnModel.stateTensors()), len(bnModel.Params()); n != p+2 {
		t.Fatalf("stateTensors = %d, params = %d: BatchNorm stats miscounted", n, p)
	}
}
