package nn

import (
	"math"

	"fifl/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// (batch, classes) against integer labels, and the gradient of the loss
// w.r.t. the logits. The softmax is computed with the max-subtraction trick
// for numerical stability; a model whose logits have overflowed (sign-flip
// attacks with large p_s can do this) yields NaN loss, which callers detect
// with math.IsNaN exactly as the paper reports models "crashing to NaN".
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, dLogits *tensor.Tensor) {
	batch, classes := logits.Dim(0), logits.Dim(1)
	if len(labels) != batch {
		panic("nn: SoftmaxCrossEntropy label count mismatch")
	}
	d := tensor.New(batch, classes)
	ld, dd := logits.Data(), d.Data()
	total := 0.0
	inv := 1.0 / float64(batch)
	for b := 0; b < batch; b++ {
		row := ld[b*classes : (b+1)*classes]
		drow := dd[b*classes : (b+1)*classes]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for i, v := range row {
			e := math.Exp(v - maxv)
			drow[i] = e
			sum += e
		}
		label := labels[b]
		p := drow[label] / sum
		total += -math.Log(math.Max(p, 1e-300))
		for i := range drow {
			drow[i] = drow[i] / sum * inv
		}
		drow[label] -= inv
	}
	return total * inv, d
}

// Argmax returns the predicted class for each row of a (batch, classes)
// logits tensor.
func Argmax(logits *tensor.Tensor) []int {
	batch, classes := logits.Dim(0), logits.Dim(1)
	out := make([]int, batch)
	ld := logits.Data()
	for b := 0; b < batch; b++ {
		row := ld[b*classes : (b+1)*classes]
		best := 0
		for i, v := range row {
			if v > row[best] {
				best = i
			}
		}
		out[b] = best
	}
	return out
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	preds := Argmax(logits)
	if len(preds) == 0 {
		return 0
	}
	hit := 0
	for i, p := range preds {
		if p == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(preds))
}
