package nn

import (
	"math"

	"fifl/internal/tensor"
)

// GroupNorm normalizes each sample's activations within channel groups and
// applies a learned per-channel affine transform. Unlike BatchNorm it
// carries no cross-batch running state, which makes it the standard
// normalization for federated learning: all of a model's behaviour lives in
// its parameter vector, so exchanging parameters (as the FL runtime does)
// exchanges the whole model. BatchNorm's running statistics would be left
// behind by the parameter exchange and silently skew server-side
// evaluation — the residual networks in this package therefore use
// GroupNorm.
type GroupNorm struct {
	C, H, W int
	Groups  int
	Eps     float64

	Gamma, Beta *tensor.Tensor // learned per-channel scale and shift
	dG, dB      *tensor.Tensor

	// caches for backward
	xhat   []float64
	invStd []float64 // per (sample, group)
}

// NewGroupNorm creates a group-norm layer with gamma=1, beta=0. groups must
// divide c.
func NewGroupNorm(groups, c, h, w int) *GroupNorm {
	if groups <= 0 || c%groups != 0 {
		panic("nn: GroupNorm groups must divide channels")
	}
	return &GroupNorm{
		C: c, H: h, W: w,
		Groups: groups,
		Eps:    1e-5,
		Gamma:  tensor.Full(1, c),
		Beta:   tensor.New(c),
		dG:     tensor.New(c),
		dB:     tensor.New(c),
	}
}

// groupsFor picks a sensible group count for a channel width.
func groupsFor(c int) int {
	for _, g := range []int{8, 4, 2} {
		if c%g == 0 && c >= g {
			return g
		}
	}
	return 1
}

// Forward normalizes each (sample, group) block to zero mean and unit
// variance, then applies the affine transform.
func (gn *GroupNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch := x.Dim(0)
	hw := gn.H * gn.W
	chPerG := gn.C / gn.Groups
	blk := chPerG * hw
	y := tensor.New(batch, gn.C, gn.H, gn.W)
	if cap(gn.xhat) < x.Size() {
		gn.xhat = make([]float64, x.Size())
	}
	gn.xhat = gn.xhat[:x.Size()]
	ng := batch * gn.Groups
	if cap(gn.invStd) < ng {
		gn.invStd = make([]float64, ng)
	}
	gn.invStd = gn.invStd[:ng]

	xd, yd := x.Data(), y.Data()
	gd, bd := gn.Gamma.Data(), gn.Beta.Data()
	for b := 0; b < batch; b++ {
		for g := 0; g < gn.Groups; g++ {
			off := b*gn.C*hw + g*blk
			sum := 0.0
			for i := off; i < off+blk; i++ {
				sum += xd[i]
			}
			mean := sum / float64(blk)
			s2 := 0.0
			for i := off; i < off+blk; i++ {
				d := xd[i] - mean
				s2 += d * d
			}
			inv := 1.0 / math.Sqrt(s2/float64(blk)+gn.Eps)
			gn.invStd[b*gn.Groups+g] = inv
			for c := 0; c < chPerG; c++ {
				ch := g*chPerG + c
				gamma, beta := gd[ch], bd[ch]
				base := off + c*hw
				for i := base; i < base+hw; i++ {
					xh := (xd[i] - mean) * inv
					gn.xhat[i] = xh
					yd[i] = gamma*xh + beta
				}
			}
		}
	}
	return y
}

// Backward implements the group-norm gradient (the batch-norm formula
// applied per (sample, group) block).
func (gn *GroupNorm) Backward(dy *tensor.Tensor) *tensor.Tensor {
	batch := dy.Dim(0)
	hw := gn.H * gn.W
	chPerG := gn.C / gn.Groups
	blk := chPerG * hw
	dx := tensor.New(batch, gn.C, gn.H, gn.W)
	dyd, dxd := dy.Data(), dx.Data()
	gd := gn.Gamma.Data()
	dgd, dbd := gn.dG.Data(), gn.dB.Data()
	n := float64(blk)

	for b := 0; b < batch; b++ {
		for g := 0; g < gn.Groups; g++ {
			off := b*gn.C*hw + g*blk
			inv := gn.invStd[b*gn.Groups+g]
			// Accumulate per-channel parameter gradients plus the two
			// block-level reductions the input gradient needs, with dy
			// scaled by gamma ("dyg") entering the reductions.
			var sumDyg, sumDygXhat float64
			for c := 0; c < chPerG; c++ {
				ch := g*chPerG + c
				gamma := gd[ch]
				base := off + c*hw
				for i := base; i < base+hw; i++ {
					dgd[ch] += dyd[i] * gn.xhat[i]
					dbd[ch] += dyd[i]
					dyg := dyd[i] * gamma
					sumDyg += dyg
					sumDygXhat += dyg * gn.xhat[i]
				}
			}
			for c := 0; c < chPerG; c++ {
				ch := g*chPerG + c
				gamma := gd[ch]
				base := off + c*hw
				for i := base; i < base+hw; i++ {
					dyg := dyd[i] * gamma
					dxd[i] = inv / n * (n*dyg - sumDyg - gn.xhat[i]*sumDygXhat)
				}
			}
		}
	}
	return dx
}

// Params returns {Gamma, Beta}.
func (gn *GroupNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{gn.Gamma, gn.Beta} }

// Grads returns {dGamma, dBeta}.
func (gn *GroupNorm) Grads() []*tensor.Tensor { return []*tensor.Tensor{gn.dG, gn.dB} }
