// Package trace records the full history of a FIFL run — per-round
// detection verdicts, scores, reputations, contributions and rewards per
// worker, plus optional model metrics — and exports it as JSON Lines or
// CSV for external analysis. The cmd/fifl-sim binary exposes it behind the
// -trace flag; downstream users attach a Recorder to their own round loop.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// WorkerRound is one worker's assessment in one communication iteration.
type WorkerRound struct {
	Round        int     `json:"round"`
	Worker       int     `json:"worker"`
	Score        float64 `json:"score"` // detection score S_i (NaN if uncertain)
	Accepted     bool    `json:"accepted"`
	Uncertain    bool    `json:"uncertain"`
	Reputation   float64 `json:"reputation"`
	Contribution float64 `json:"contribution"`
	Reward       float64 `json:"reward"`
	// Status is the upload's fate in the fault-tolerant runtime ("ok",
	// "retried", "dropped", "timed_out", "crashed"); empty for records
	// produced before the runtime recorded statuses.
	Status string `json:"status,omitempty"`
}

// RoundMetrics carries optional whole-model measurements for a round.
type RoundMetrics struct {
	Round    int     `json:"round"`
	Accuracy float64 `json:"accuracy"`
	Loss     float64 `json:"loss"`
}

// Recorder accumulates a run's history in memory.
type Recorder struct {
	workers []WorkerRound
	metrics []RoundMetrics
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// RecordWorker appends one worker-round record.
func (r *Recorder) RecordWorker(w WorkerRound) { r.workers = append(r.workers, w) }

// RecordMetrics appends one round's model metrics.
func (r *Recorder) RecordMetrics(m RoundMetrics) { r.metrics = append(r.metrics, m) }

// Len reports the number of worker-round records.
func (r *Recorder) Len() int { return len(r.workers) }

// Rounds reports the number of distinct rounds seen in worker records.
func (r *Recorder) Rounds() int {
	seen := map[int]bool{}
	for _, w := range r.workers {
		seen[w.Round] = true
	}
	return len(seen)
}

// WorkerHistory returns worker i's records in round order.
func (r *Recorder) WorkerHistory(i int) []WorkerRound {
	var out []WorkerRound
	for _, w := range r.workers {
		if w.Worker == i {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Round < out[b].Round })
	return out
}

// CumulativeReward returns worker i's reward total over the recorded run.
func (r *Recorder) CumulativeReward(i int) float64 {
	total := 0.0
	for _, w := range r.workers {
		if w.Worker == i {
			total += w.Reward
		}
	}
	return total
}

// Summary aggregates a worker's record into headline numbers.
type Summary struct {
	Worker           int     `json:"worker"`
	Rounds           int     `json:"rounds"`
	AcceptRate       float64 `json:"accept_rate"`
	UncertainRate    float64 `json:"uncertain_rate"`
	FinalReputation  float64 `json:"final_reputation"`
	MeanContribution float64 `json:"mean_contribution"`
	CumulativeReward float64 `json:"cumulative_reward"`
}

// Summarize produces one Summary per worker, ordered by worker index.
func (r *Recorder) Summarize() []Summary {
	byWorker := map[int][]WorkerRound{}
	for _, w := range r.workers {
		byWorker[w.Worker] = append(byWorker[w.Worker], w)
	}
	ids := make([]int, 0, len(byWorker))
	for id := range byWorker {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]Summary, 0, len(ids))
	for _, id := range ids {
		rows := byWorker[id]
		sort.Slice(rows, func(a, b int) bool { return rows[a].Round < rows[b].Round })
		s := Summary{Worker: id, Rounds: len(rows)}
		var accepted, uncertain, contribSum, rewardSum float64
		for _, row := range rows {
			if row.Accepted {
				accepted++
			}
			if row.Uncertain {
				uncertain++
			}
			contribSum += row.Contribution
			rewardSum += row.Reward
		}
		n := float64(len(rows))
		s.AcceptRate = accepted / n
		s.UncertainRate = uncertain / n
		s.FinalReputation = rows[len(rows)-1].Reputation
		s.MeanContribution = contribSum / n
		s.CumulativeReward = rewardSum
		out = append(out, s)
	}
	return out
}

// WriteJSONL streams every record as JSON Lines: worker records first (one
// object per line, type "worker"), then metrics (type "metrics").
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range r.workers {
		if err := enc.Encode(struct {
			Type string `json:"type"`
			WorkerRound
		}{"worker", sanitize(rec)}); err != nil {
			return fmt.Errorf("trace: encoding worker record: %w", err)
		}
	}
	for _, m := range r.metrics {
		if err := enc.Encode(struct {
			Type string `json:"type"`
			RoundMetrics
		}{"metrics", m}); err != nil {
			return fmt.Errorf("trace: encoding metrics record: %w", err)
		}
	}
	return nil
}

// sanitize replaces non-JSON float values; NaN scores mark uncertain
// events and become 0 with the Uncertain flag carrying the information.
func sanitize(w WorkerRound) WorkerRound {
	if math.IsNaN(w.Score) || math.IsInf(w.Score, 0) {
		w.Score = 0
	}
	return w
}

// WriteCSV writes the worker records as one CSV table.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"round", "worker", "score", "accepted", "uncertain", "reputation", "contribution", "reward", "status"}); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	for _, rec := range r.workers {
		rec = sanitize(rec)
		row := []string{
			strconv.Itoa(rec.Round),
			strconv.Itoa(rec.Worker),
			strconv.FormatFloat(rec.Score, 'g', -1, 64),
			strconv.FormatBool(rec.Accepted),
			strconv.FormatBool(rec.Uncertain),
			strconv.FormatFloat(rec.Reputation, 'g', -1, 64),
			strconv.FormatFloat(rec.Contribution, 'g', -1, 64),
			strconv.FormatFloat(rec.Reward, 'g', -1, 64),
			rec.Status,
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
