package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func sampleRecorder() *Recorder {
	r := NewRecorder()
	for round := 0; round < 3; round++ {
		for worker := 0; worker < 2; worker++ {
			r.RecordWorker(WorkerRound{
				Round:        round,
				Worker:       worker,
				Score:        float64(worker),
				Accepted:     worker == 0,
				Reputation:   0.5 + float64(round)*0.1,
				Contribution: float64(round),
				Reward:       float64(round) * 0.1,
			})
		}
		r.RecordMetrics(RoundMetrics{Round: round, Accuracy: 0.1 * float64(round), Loss: 2 - float64(round)*0.1})
	}
	return r
}

func TestRecorderCounts(t *testing.T) {
	r := sampleRecorder()
	if r.Len() != 6 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Rounds() != 3 {
		t.Fatalf("Rounds = %d", r.Rounds())
	}
}

func TestWorkerHistoryOrdered(t *testing.T) {
	r := sampleRecorder()
	h := r.WorkerHistory(1)
	if len(h) != 3 {
		t.Fatalf("history length %d", len(h))
	}
	for i, rec := range h {
		if rec.Round != i || rec.Worker != 1 {
			t.Fatalf("history out of order: %+v", h)
		}
	}
}

func TestCumulativeReward(t *testing.T) {
	r := sampleRecorder()
	if got := r.CumulativeReward(0); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("cumulative = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	r := sampleRecorder()
	sums := r.Summarize()
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	s0 := sums[0]
	if s0.Worker != 0 || s0.Rounds != 3 {
		t.Fatalf("summary = %+v", s0)
	}
	if s0.AcceptRate != 1 {
		t.Fatalf("accept rate = %v", s0.AcceptRate)
	}
	if sums[1].AcceptRate != 0 {
		t.Fatalf("worker 1 accept rate = %v", sums[1].AcceptRate)
	}
	if math.Abs(s0.FinalReputation-0.7) > 1e-12 {
		t.Fatalf("final reputation = %v", s0.FinalReputation)
	}
	if math.Abs(s0.MeanContribution-1) > 1e-12 {
		t.Fatalf("mean contribution = %v", s0.MeanContribution)
	}
}

func TestWriteJSONL(t *testing.T) {
	r := sampleRecorder()
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 9 { // 6 worker + 3 metrics
		t.Fatalf("jsonl lines = %d", len(lines))
	}
	// Every line must be valid JSON with a type tag.
	for _, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
		if obj["type"] != "worker" && obj["type"] != "metrics" {
			t.Fatalf("unexpected type %v", obj["type"])
		}
	}
}

func TestWriteJSONLSanitizesNaN(t *testing.T) {
	r := NewRecorder()
	r.RecordWorker(WorkerRound{Round: 0, Worker: 0, Score: math.NaN(), Uncertain: true})
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatalf("NaN score must not break JSON encoding: %v", err)
	}
	if !strings.Contains(buf.String(), `"uncertain":true`) {
		t.Fatal("uncertain flag lost")
	}
}

func TestWriteCSV(t *testing.T) {
	r := sampleRecorder()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 { // header + 6
		t.Fatalf("csv rows = %d", len(rows))
	}
	if rows[0][0] != "round" || len(rows[0]) != 9 {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[0][8] != "status" {
		t.Fatalf("last header column = %q, want status", rows[0][8])
	}
}

func TestStatusRoundTrips(t *testing.T) {
	r := NewRecorder()
	r.RecordWorker(WorkerRound{Round: 0, Worker: 0, Status: "timed_out"})
	var jbuf, cbuf bytes.Buffer
	if err := r.WriteJSONL(&jbuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jbuf.String(), `"status":"timed_out"`) {
		t.Fatalf("status missing from JSONL: %s", jbuf.String())
	}
	if err := r.WriteCSV(&cbuf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&cbuf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if rows[1][8] != "timed_out" {
		t.Fatalf("status column = %q", rows[1][8])
	}
}
