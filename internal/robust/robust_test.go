package robust

import (
	"math"
	"testing"
	"testing/quick"

	"fifl/internal/gradvec"
	"fifl/internal/rng"
)

// honestCloud builds n noisy copies of a base vector plus f sign-flipped
// amplified attackers.
func honestCloud(src *rng.Source, dim, n, f int, ps float64) ([]gradvec.Vector, gradvec.Vector) {
	base := make(gradvec.Vector, dim)
	src.FillNormal(base, 0, 1)
	out := make([]gradvec.Vector, 0, n+f)
	for i := 0; i < n; i++ {
		g := base.Clone()
		noise := make([]float64, dim)
		src.FillNormal(noise, 0, 0.2)
		g.Add(gradvec.Vector(noise))
		out = append(out, g)
	}
	for i := 0; i < f; i++ {
		g := base.Clone()
		g.Scale(-ps)
		out = append(out, g)
	}
	return out, base
}

func TestMeanMatchesAverage(t *testing.T) {
	grads := []gradvec.Vector{{1, 2}, {3, 4}, nil}
	got := (Mean{}).Aggregate(grads)
	if got[0] != 2 || got[1] != 3 {
		t.Fatalf("mean = %v", got)
	}
}

func TestAllHandleEmpty(t *testing.T) {
	for _, a := range All(1) {
		if a.Aggregate(nil) != nil {
			t.Fatalf("%s: aggregate of nothing should be nil", a.Name())
		}
		if a.Aggregate([]gradvec.Vector{nil, {math.NaN()}}) != nil {
			t.Fatalf("%s: aggregate of unusable gradients should be nil", a.Name())
		}
	}
}

func TestAllSingleGradientIdentity(t *testing.T) {
	g := gradvec.Vector{1, -2, 3}
	for _, a := range All(0) {
		got := a.Aggregate([]gradvec.Vector{g})
		for i := range g {
			if math.Abs(got[i]-g[i]) > 1e-12 {
				t.Fatalf("%s: single-gradient aggregate %v", a.Name(), got)
			}
		}
	}
}

// TestRobustAggregatorsResistSignFlip is the core guarantee: with a
// minority of amplified sign-flip attackers, every robust rule stays close
// to the honest direction while the plain mean is dragged negative.
func TestRobustAggregatorsResistSignFlip(t *testing.T) {
	src := rng.New(1)
	grads, base := honestCloud(src, 64, 7, 3, 5)
	mean := (Mean{}).Aggregate(grads)
	if base.CosSim(mean) > 0 {
		t.Fatalf("plain mean should be corrupted, cos=%v", base.CosSim(mean))
	}
	for _, a := range []Aggregator{Krum{F: 3}, Krum{F: 3, M: 3}, Median{}, TrimmedMean{Beta: 3}} {
		got := a.Aggregate(grads)
		if cos := base.CosSim(got); cos < 0.5 {
			t.Fatalf("%s failed to resist: cos=%v", a.Name(), cos)
		}
	}
}

func TestKrumPicksInlier(t *testing.T) {
	src := rng.New(2)
	grads, base := honestCloud(src, 32, 6, 2, 4)
	got := Krum{F: 2}.Aggregate(grads)
	// Krum returns one of the honest gradients: very close to base.
	if cos := base.CosSim(got); cos < 0.9 {
		t.Fatalf("krum picked an outlier: cos=%v", cos)
	}
}

func TestMedianOddEven(t *testing.T) {
	odd := []gradvec.Vector{{1}, {5}, {100}}
	if got := (Median{}).Aggregate(odd); got[0] != 5 {
		t.Fatalf("odd median = %v", got[0])
	}
	even := []gradvec.Vector{{1}, {3}, {5}, {100}}
	if got := (Median{}).Aggregate(even); got[0] != 4 {
		t.Fatalf("even median = %v", got[0])
	}
}

func TestTrimmedMeanTrims(t *testing.T) {
	grads := []gradvec.Vector{{-1000}, {1}, {2}, {3}, {1000}}
	got := TrimmedMean{Beta: 1}.Aggregate(grads)
	if got[0] != 2 {
		t.Fatalf("trimmed mean = %v, want 2", got[0])
	}
	// Degenerate trim falls back to the median.
	got = TrimmedMean{Beta: 3}.Aggregate(grads)
	if got[0] != 2 {
		t.Fatalf("degenerate trimmed mean = %v, want median 2", got[0])
	}
}

func TestNormClipBoundsAmplification(t *testing.T) {
	grads := []gradvec.Vector{{1, 0}, {1, 0}, {-100, 0}}
	got := (NormClip{}).Aggregate(grads)
	// The attacker is clipped to the median norm (1): (1 + 1 - 1)/3.
	if math.Abs(got[0]-1.0/3) > 1e-12 {
		t.Fatalf("norm-clip = %v, want 1/3", got[0])
	}
}

// Property: every aggregator is permutation-invariant.
func TestPermutationInvariance(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		grads, _ := honestCloud(src, 16, 5, 2, 3)
		perm := src.Perm(len(grads))
		shuffled := make([]gradvec.Vector, len(grads))
		for i, p := range perm {
			shuffled[i] = grads[p]
		}
		for _, a := range All(2) {
			x := a.Aggregate(grads)
			y := a.Aggregate(shuffled)
			for i := range x {
				if math.Abs(x[i]-y[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: median and trimmed mean are bounded by the per-coordinate
// min/max of the inputs (no aggregate can exceed every worker).
func TestCoordinateBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		n, dim := src.UniformInt(3, 9), src.UniformInt(1, 10)
		grads := make([]gradvec.Vector, n)
		for i := range grads {
			g := make(gradvec.Vector, dim)
			src.FillNormal(g, 0, 2)
			grads[i] = g
		}
		for _, a := range []Aggregator{Median{}, TrimmedMean{Beta: 1}} {
			got := a.Aggregate(grads)
			for d := 0; d < dim; d++ {
				lo, hi := math.Inf(1), math.Inf(-1)
				for _, g := range grads {
					lo = math.Min(lo, g[d])
					hi = math.Max(hi, g[d])
				}
				if got[d] < lo-1e-12 || got[d] > hi+1e-12 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
