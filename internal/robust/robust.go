// Package robust implements the classical Byzantine-robust aggregation
// rules FIFL's attack-detection module is an alternative to: Krum and
// Multi-Krum (Blanchard et al., the paper's [3]), coordinate-wise median,
// and trimmed mean. The paper positions its detection module against this
// line of defenses ([3, 6, 28, 29]); implementing them lets the abl-defense
// experiment compare FIFL's filter with the standard robust aggregators
// under identical attacks.
//
// All aggregators consume the per-worker gradients of a round (nil entries
// are dropped uploads) and produce a single aggregate; unlike FIFL they
// output no per-worker verdicts, which is exactly why they cannot drive an
// incentive mechanism — the comparison the paper cares about.
package robust

import (
	"fmt"
	"sort"

	"fifl/internal/gradvec"
)

// Aggregator combines one round of local gradients into a global gradient.
type Aggregator interface {
	// Name identifies the rule in reports.
	Name() string
	// Aggregate returns the combined gradient, or nil if no usable
	// gradient survives.
	Aggregate(grads []gradvec.Vector) gradvec.Vector
}

// usable filters out dropped and NaN-poisoned uploads.
func usable(grads []gradvec.Vector) []gradvec.Vector {
	out := make([]gradvec.Vector, 0, len(grads))
	for _, g := range grads {
		if g != nil && !g.HasNaN() {
			out = append(out, g)
		}
	}
	return out
}

// Mean is plain FedAvg with uniform weights — the undefended reference.
type Mean struct{}

// Name implements Aggregator.
func (Mean) Name() string { return "mean" }

// Aggregate averages all usable gradients.
func (Mean) Aggregate(grads []gradvec.Vector) gradvec.Vector {
	gs := usable(grads)
	if len(gs) == 0 {
		return nil
	}
	out := gradvec.Zeros(len(gs[0]))
	w := 1.0 / float64(len(gs))
	for _, g := range gs {
		out.AddScaled(w, g)
	}
	return out
}

// Krum selects the single gradient with the smallest sum of squared
// distances to its n−f−2 nearest neighbours, tolerating up to f Byzantine
// workers (Blanchard et al. 2017).
type Krum struct {
	// F is the number of Byzantine workers tolerated.
	F int
	// M, when > 1, averages the M best-scoring gradients (Multi-Krum).
	M int
}

// Name implements Aggregator.
func (k Krum) Name() string {
	if k.M > 1 {
		return fmt.Sprintf("multi-krum(m=%d)", k.M)
	}
	return "krum"
}

// Aggregate runs (Multi-)Krum selection.
func (k Krum) Aggregate(grads []gradvec.Vector) gradvec.Vector {
	gs := usable(grads)
	n := len(gs)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return gs[0].Clone()
	}
	// Pairwise squared distances.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := gs[i].SqDist(gs[j])
			dist[i][j] = d
			dist[j][i] = d
		}
	}
	// Krum score: sum of the n−f−2 smallest distances to others.
	keep := n - k.F - 2
	if keep < 1 {
		keep = 1
	}
	if keep > n-1 {
		keep = n - 1
	}
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		ds := make([]float64, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				ds = append(ds, dist[i][j])
			}
		}
		sort.Float64s(ds)
		for _, d := range ds[:keep] {
			scores[i] += d
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	m := k.M
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	out := gradvec.Zeros(len(gs[0]))
	w := 1.0 / float64(m)
	for _, idx := range order[:m] {
		out.AddScaled(w, gs[idx])
	}
	return out
}

// Median aggregates by the coordinate-wise median, robust to up to half
// the workers being Byzantine in each coordinate.
type Median struct{}

// Name implements Aggregator.
func (Median) Name() string { return "median" }

// Aggregate computes per-coordinate medians.
func (Median) Aggregate(grads []gradvec.Vector) gradvec.Vector {
	gs := usable(grads)
	n := len(gs)
	if n == 0 {
		return nil
	}
	dim := len(gs[0])
	out := gradvec.Zeros(dim)
	col := make([]float64, n)
	for d := 0; d < dim; d++ {
		for i, g := range gs {
			col[i] = g[d]
		}
		sort.Float64s(col)
		if n%2 == 1 {
			out[d] = col[n/2]
		} else {
			out[d] = 0.5 * (col[n/2-1] + col[n/2])
		}
	}
	return out
}

// TrimmedMean drops the Beta largest and Beta smallest values per
// coordinate and averages the rest.
type TrimmedMean struct {
	// Beta is the per-side trim count. 2·Beta must be smaller than the
	// number of usable gradients; otherwise the rule degrades to the
	// median.
	Beta int
}

// Name implements Aggregator.
func (t TrimmedMean) Name() string { return fmt.Sprintf("trimmed-mean(b=%d)", t.Beta) }

// Aggregate computes per-coordinate trimmed means.
func (t TrimmedMean) Aggregate(grads []gradvec.Vector) gradvec.Vector {
	gs := usable(grads)
	n := len(gs)
	if n == 0 {
		return nil
	}
	if 2*t.Beta >= n {
		return Median{}.Aggregate(grads)
	}
	dim := len(gs[0])
	out := gradvec.Zeros(dim)
	col := make([]float64, n)
	inv := 1.0 / float64(n-2*t.Beta)
	for d := 0; d < dim; d++ {
		for i, g := range gs {
			col[i] = g[d]
		}
		sort.Float64s(col)
		s := 0.0
		for _, v := range col[t.Beta : n-t.Beta] {
			s += v
		}
		out[d] = s * inv
	}
	return out
}

// NormClip scales every gradient down to at most the median norm before
// averaging — a lightweight defense against amplified (sign-flip style)
// updates that does nothing about direction.
type NormClip struct{}

// Name implements Aggregator.
func (NormClip) Name() string { return "norm-clip" }

// Aggregate clips to the median norm and averages.
func (NormClip) Aggregate(grads []gradvec.Vector) gradvec.Vector {
	gs := usable(grads)
	n := len(gs)
	if n == 0 {
		return nil
	}
	norms := make([]float64, n)
	for i, g := range gs {
		norms[i] = g.Norm2()
	}
	sorted := append([]float64(nil), norms...)
	sort.Float64s(sorted)
	clip := sorted[n/2]
	out := gradvec.Zeros(len(gs[0]))
	w := 1.0 / float64(n)
	for i, g := range gs {
		scale := w
		if norms[i] > clip && norms[i] > 0 {
			scale = w * clip / norms[i]
		}
		out.AddScaled(scale, g)
	}
	return out
}

// All returns the implemented robust aggregators with a tolerance
// parameter suited to f expected Byzantine workers.
func All(f int) []Aggregator {
	return []Aggregator{
		Mean{},
		Krum{F: f},
		Krum{F: f, M: 3},
		Median{},
		TrimmedMean{Beta: f},
		NormClip{},
	}
}
