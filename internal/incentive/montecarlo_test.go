package incentive

import (
	"math"
	"testing"
)

// mcSamples is a deliberately skewed federation (one data giant, a mid
// tier, several small holders) so the Shapley values are far from uniform
// and an estimator bias would show.
var mcSamples = []int{800, 400, 400, 200, 100, 100, 50, 25, 10, 5}

// TestMonteCarloMatchesExactSmallN is the estimator's error-bound
// guarantee: at n <= 10 the seeded Monte-Carlo estimate must agree with
// the exact subset enumeration within the configured tolerance, both per
// worker and in normalized shares.
func TestMonteCarloMatchesExactSmallN(t *testing.T) {
	const sampleTol = 0.05 // absolute per-worker error budget at 8000 permutations (~3σ)
	exact := shapleyExact(mcSamples)
	mc := NewMonteCarloShapley(7, 8000, 1e-9).Weights(mcSamples)
	if len(mc) != len(exact) {
		t.Fatalf("Monte-Carlo returned %d weights, exact %d", len(mc), len(exact))
	}
	for i := range exact {
		if diff := math.Abs(mc[i] - exact[i]); diff > sampleTol {
			t.Errorf("worker %d: |mc %.5f - exact %.5f| = %.5f exceeds tolerance %g",
				i, mc[i], exact[i], diff, sampleTol)
		}
	}
	// Shares (the quantity rewards are paid from) must agree even tighter:
	// normalization cancels the common scale error.
	exactShares := Shares(Shapley{}, mcSamples)
	mcShares := Shares(NewMonteCarloShapley(7, 8000, 1e-9), mcSamples)
	for i := range exactShares {
		if diff := math.Abs(mcShares[i] - exactShares[i]); diff > 0.005 {
			t.Errorf("share %d: |mc %.5f - exact %.5f| = %.5f", i, mcShares[i], exactShares[i], diff)
		}
	}
}

// TestMonteCarloTruncationBias: enabling an aggressive truncation
// tolerance must not move any estimate by more than that tolerance —
// the bound the Ψ-monotonicity argument promises.
func TestMonteCarloTruncationBias(t *testing.T) {
	const tol = 0.05
	plain := NewMonteCarloShapley(21, 2000, 0).Weights(mcSamples)
	truncated := NewMonteCarloShapley(21, 2000, tol).Weights(mcSamples)
	for i := range plain {
		if diff := math.Abs(plain[i] - truncated[i]); diff > tol {
			t.Errorf("worker %d: truncation moved the estimate by %.5f > tolerance %g", i, diff, tol)
		}
	}
}

// TestMonteCarloDeterminism: the same seed over the same inputs
// reproduces the same estimates bit for bit, and successive calls
// continue (not restart) the stream.
func TestMonteCarloDeterminism(t *testing.T) {
	a := NewMonteCarloShapley(3, 500, 1e-6)
	b := NewMonteCarloShapley(3, 500, 1e-6)
	w1a, w1b := a.Weights(mcSamples), b.Weights(mcSamples)
	for i := range w1a {
		if math.Float64bits(w1a[i]) != math.Float64bits(w1b[i]) {
			t.Fatalf("same seed diverged at worker %d: %v vs %v", i, w1a[i], w1b[i])
		}
	}
	w2a := a.Weights(mcSamples)
	same := true
	for i := range w2a {
		if math.Float64bits(w2a[i]) != math.Float64bits(w1a[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("second Weights call replayed the first call's stream instead of continuing it")
	}
}

// TestMonteCarloResume: the Draws/Discard contract — a fresh estimator on
// the same seed, fast-forwarded to a recorded stream position, continues
// bit for bit. This is what lets a checkpointed federation with
// shapley-mc active resume identically.
func TestMonteCarloResume(t *testing.T) {
	orig := NewMonteCarloShapley(9, 400, 1e-6)
	orig.Weights(mcSamples) // advance the stream by one round's worth
	pos := orig.RNGDraws()
	if pos == 0 {
		t.Fatal("Weights consumed no random draws")
	}
	next := orig.Weights(mcSamples)

	resumed := NewMonteCarloShapley(9, 400, 1e-6)
	if err := resumed.DiscardRNG(pos); err != nil {
		t.Fatal(err)
	}
	got := resumed.Weights(mcSamples)
	for i := range next {
		if math.Float64bits(got[i]) != math.Float64bits(next[i]) {
			t.Fatalf("resumed stream diverged at worker %d: %v vs %v", i, got[i], next[i])
		}
	}
	if err := resumed.DiscardRNG(0); err == nil {
		t.Fatal("DiscardRNG rewound the stream")
	}
}

// TestMonteCarloEdgeCases: n=0 and n=1 short-circuit without touching the
// random stream; defaults resolve for zero-valued parameters.
func TestMonteCarloEdgeCases(t *testing.T) {
	m := NewMonteCarloShapley(0, 0, -1)
	if m.Rounds() != DefaultMCRounds {
		t.Fatalf("rounds defaulted to %d, want %d", m.Rounds(), DefaultMCRounds)
	}
	if m.Tolerance() != 0 {
		t.Fatalf("negative tolerance did not clamp to 0: %v", m.Tolerance())
	}
	if w := m.Weights(nil); len(w) != 0 {
		t.Fatalf("Weights(nil) = %v", w)
	}
	if w := m.Weights([]int{100}); len(w) != 1 || w[0] != Utility(100) {
		t.Fatalf("Weights(single) = %v, want [%v]", w, Utility(100))
	}
	if m.RNGDraws() != 0 {
		t.Fatalf("degenerate inputs consumed %d random draws", m.RNGDraws())
	}
}
