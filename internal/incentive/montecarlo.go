package incentive

import (
	"fmt"

	"fifl/internal/rng"
)

// Defaults for MonteCarloShapley; zero-valued fields resolve to these.
const (
	// DefaultMCRounds is the permutation sample budget.
	DefaultMCRounds = 2000
	// DefaultMCSeed roots the estimator's private random stream when the
	// caller does not supply a seed, keeping results reproducible.
	DefaultMCSeed uint64 = 0x5ab1e2
	// DefaultMCTolerance is the truncation threshold used when a caller
	// wants TMC behaviour without tuning: small against Ψ's O(log n)
	// range, so the bias it admits is far below sampling noise.
	DefaultMCTolerance = 1e-3
)

// MonteCarloShapley estimates Shapley values by truncated-permutation
// Monte Carlo sampling (TMC-Shapley): it averages marginal utilities over
// Rounds random coalition orderings, and within each ordering stops
// scanning once the utility still unclaimed — Ψ(total) − Ψ(sum so far) —
// falls below Tolerance. Because Ψ(n) = log(1+n) is monotone in the
// coalition's sample sum, every truncated marginal is bounded by
// Tolerance, so truncation biases each estimate by at most Tolerance per
// permutation while skipping the long, flat tail of large coalitions.
//
// The estimator runs in O(Rounds·n) instead of the exact enumeration's
// O(n·2^(n-1)), which is what makes Shapley-style payouts tractable at
// production federation sizes.
//
// The sampler owns a private deterministic random stream, so the type is
// stateful: successive Weights calls continue the stream, and the same
// seed replayed over the same inputs reproduces the same estimates bit
// for bit. RNGDraws and DiscardRNG expose the stream position under the
// same contract as fl.Engine, letting checkpoints persist "where the
// randomness got to" as a single integer.
type MonteCarloShapley struct {
	rounds    int
	tolerance float64
	src       *rng.Source
	perm      []int // reused across permutations; grown on demand
}

// NewMonteCarloShapley builds the sampled estimator. rounds <= 0 selects
// DefaultMCRounds; tolerance <= 0 disables truncation (pure Monte Carlo
// permutation sampling); seed 0 selects DefaultMCSeed.
func NewMonteCarloShapley(seed uint64, rounds int, tolerance float64) *MonteCarloShapley {
	if seed == 0 {
		seed = DefaultMCSeed
	}
	if rounds <= 0 {
		rounds = DefaultMCRounds
	}
	if tolerance < 0 {
		tolerance = 0
	}
	return &MonteCarloShapley{rounds: rounds, tolerance: tolerance, src: rng.New(seed)}
}

// Name implements Mechanism.
func (*MonteCarloShapley) Name() string { return "Shapley-MC" }

// Rounds reports the permutation sample budget.
func (m *MonteCarloShapley) Rounds() int { return m.rounds }

// Tolerance reports the truncation threshold (0 = no truncation).
func (m *MonteCarloShapley) Tolerance() float64 { return m.tolerance }

// Weights implements Mechanism: it returns the estimated Shapley value of
// every worker. Each call consumes the estimator's random stream, so call
// order matters for reproducibility — exactly once per round, like the
// engine's fault stream.
func (m *MonteCarloShapley) Weights(samples []int) []float64 {
	n := len(samples)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if n == 1 {
		out[0] = Utility(float64(samples[0]))
		return out
	}
	total := 0.0
	for _, s := range samples {
		total += float64(s)
	}
	full := Utility(total)
	if cap(m.perm) < n {
		m.perm = make([]int, n)
	}
	perm := m.perm[:n]
	for r := 0; r < m.rounds; r++ {
		for i := range perm {
			perm[i] = i
		}
		m.src.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		sum := 0.0
		for _, i := range perm {
			before := Utility(sum)
			if m.tolerance > 0 && full-before < m.tolerance {
				// Every remaining marginal is below the tolerance (Ψ is
				// monotone); skip the tail of this permutation.
				break
			}
			sum += float64(samples[i])
			out[i] += Utility(sum) - before
		}
	}
	inv := 1.0 / float64(m.rounds)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// RNGDraws reports how many raw steps the estimator's private random
// stream has consumed; together with the seed it pins the stream position
// for checkpointing.
func (m *MonteCarloShapley) RNGDraws() uint64 { return m.src.Draws() }

// DiscardRNG fast-forwards the random stream to the position a checkpoint
// recorded. It refuses to rewind: the stream can only be advanced on a
// freshly built estimator.
func (m *MonteCarloShapley) DiscardRNG(n uint64) error {
	if cur := m.src.Draws(); cur > n {
		return fmt.Errorf("incentive: Shapley-MC RNG already at %d draws, cannot rewind to %d", cur, n)
	}
	m.src.Discard(n - m.src.Draws())
	return nil
}
