// Package incentive implements the four baseline payoff-sharing schemes
// FIFL is compared against in §5 (Eq. 18–22): Equal, Individual, Union and
// Shapley. All of them derive a worker's reward weight ω_i from the
// reported sample counts through the utility function Ψ(n) = log(1+n); none
// of them can defend against attackers or sample-count fraud, which is the
// contrast the evaluation draws.
package incentive

import (
	"math"
	"math/bits"

	"fifl/internal/parallel"
	"fifl/internal/rng"
)

// Utility is the revenue function Ψ(n) = log(1+n) relating an amount of
// training data to system revenue, following Zhan et al. as adopted by the
// paper.
func Utility(n float64) float64 { return math.Log1p(n) }

// Mechanism computes per-worker reward weights ω_i from reported sample
// counts. Weights are later normalized to shares ω_i/Σω_j (Eq. 18).
type Mechanism interface {
	// Name identifies the mechanism in reports.
	Name() string
	// Weights returns one non-negative weight per worker.
	Weights(samples []int) []float64
}

// Equal pays every participant the same (Eq. 20) — the traditional
// distributed-ML scheme.
type Equal struct{}

// Name implements Mechanism.
func (Equal) Name() string { return "Equal" }

// Weights returns uniform weights.
func (Equal) Weights(samples []int) []float64 {
	out := make([]float64, len(samples))
	for i := range out {
		out[i] = 1
	}
	return out
}

// Individual pays proportionally to each worker's independent utility
// Ψ(n_i) (Eq. 19).
type Individual struct{}

// Name implements Mechanism.
func (Individual) Name() string { return "Individual" }

// Weights returns ω_i = Ψ(n_i).
func (Individual) Weights(samples []int) []float64 {
	out := make([]float64, len(samples))
	for i, n := range samples {
		out[i] = Utility(float64(n))
	}
	return out
}

// Union pays each worker its marginal utility: the revenue the federation
// gains when the worker joins, ω_i = Ψ(A) − Ψ(A∖{i}) (Eq. 21).
type Union struct{}

// Name implements Mechanism.
func (Union) Name() string { return "Union" }

// Weights returns the marginal utilities. With Ψ depending only on the
// coalition's total data, Ψ(A) = log(1+Σn).
func (Union) Weights(samples []int) []float64 {
	total := 0.0
	for _, n := range samples {
		total += float64(n)
	}
	out := make([]float64, len(samples))
	full := Utility(total)
	for i, n := range samples {
		out[i] = full - Utility(total-float64(n))
	}
	return out
}

// Shapley pays each worker its Shapley value: the marginal utility averaged
// over every coalition ordering (Eq. 22). For N ≤ MaxExactN the value is
// computed exactly by subset enumeration; beyond that it falls back to
// Monte Carlo permutation sampling with SampleRounds permutations.
type Shapley struct {
	// MaxExactN bounds exact enumeration; 0 means the default of 20.
	MaxExactN int
	// SampleRounds is the number of random permutations for the sampled
	// estimator; 0 means the default of 2000.
	SampleRounds int
	// Src seeds the sampled estimator; nil uses a fixed seed so results
	// stay reproducible.
	Src *rng.Source
}

// Name implements Mechanism.
func (Shapley) Name() string { return "Shapley" }

// Weights returns the Shapley values of all workers.
func (s Shapley) Weights(samples []int) []float64 {
	maxExact := s.MaxExactN
	if maxExact == 0 {
		maxExact = 20
	}
	if len(samples) <= maxExact {
		return shapleyExact(samples)
	}
	rounds := s.SampleRounds
	if rounds == 0 {
		rounds = 2000
	}
	src := s.Src
	if src == nil {
		src = rng.New(0x5ab1e)
	}
	return shapleySampled(samples, rounds, src)
}

// shapleyExact enumerates, for each worker i, every subset S of the other
// workers and accumulates the weighted marginal |S|!(N−|S|−1)!/N! ·
// (Ψ(S∪{i}) − Ψ(S)). Because Ψ depends only on the coalition's sample sum,
// each subset costs O(1) beyond the incremental sum.
func shapleyExact(samples []int) []float64 {
	n := len(samples)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if n == 1 {
		out[0] = Utility(float64(samples[0]))
		return out
	}
	// Precompute the permutation-count weights per coalition size.
	// w_k = k!·(n−k−1)!/n! computed in log space to avoid overflow.
	logFact := make([]float64, n+1)
	for i := 2; i <= n; i++ {
		logFact[i] = logFact[i-1] + math.Log(float64(i))
	}
	weight := make([]float64, n)
	for k := 0; k < n; k++ {
		weight[k] = math.Exp(logFact[k] + logFact[n-k-1] - logFact[n])
	}
	parallel.For(n, func(i int) {
		others := make([]float64, 0, n-1)
		for j, v := range samples {
			if j != i {
				others = append(others, float64(v))
			}
		}
		ni := float64(samples[i])
		// Incremental subset sums over masks of the n-1 others:
		// sum[mask] = sum[mask & (mask-1)] + others[lowest set bit].
		masks := 1 << (n - 1)
		sums := make([]float64, masks)
		total := 0.0
		for mask := 1; mask < masks; mask++ {
			low := mask & -mask
			sums[mask] = sums[mask^low] + others[bits.TrailingZeros(uint(low))]
		}
		for mask := 0; mask < masks; mask++ {
			k := bits.OnesCount(uint(mask))
			total += weight[k] * (Utility(sums[mask]+ni) - Utility(sums[mask]))
		}
		out[i] = total
	})
	return out
}

// shapleySampled estimates Shapley values by averaging marginals over
// random permutations.
func shapleySampled(samples []int, rounds int, src *rng.Source) []float64 {
	n := len(samples)
	out := make([]float64, n)
	for r := 0; r < rounds; r++ {
		perm := src.Perm(n)
		sum := 0.0
		for _, i := range perm {
			before := Utility(sum)
			sum += float64(samples[i])
			out[i] += Utility(sum) - before
		}
	}
	inv := 1.0 / float64(rounds)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Shares normalizes a mechanism's weights into reward shares
// ω_i/Σ_j ω_j (Eq. 18). An all-zero weight vector yields uniform shares.
func Shares(m Mechanism, samples []int) []float64 {
	w := m.Weights(samples)
	total := 0.0
	for _, v := range w {
		total += v
	}
	out := make([]float64, len(w))
	if total == 0 {
		if len(w) > 0 {
			u := 1.0 / float64(len(w))
			for i := range out {
				out[i] = u
			}
		}
		return out
	}
	for i, v := range w {
		out[i] = v / total
	}
	return out
}

// Baselines returns the four baseline mechanisms in the paper's order.
func Baselines() []Mechanism {
	return []Mechanism{Individual{}, Equal{}, Union{}, Shapley{}}
}
