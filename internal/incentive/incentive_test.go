package incentive

import (
	"math"
	"testing"
	"testing/quick"

	"fifl/internal/rng"
)

func TestUtilityShape(t *testing.T) {
	if Utility(0) != 0 {
		t.Fatal("Ψ(0) must be 0")
	}
	// Monotone increasing and concave (diminishing marginal utility in
	// equal sample increments).
	prev := Utility(0)
	prevGain := math.Inf(1)
	for n := 500.0; n <= 10000; n += 500 {
		u := Utility(n)
		if u <= prev {
			t.Fatal("Ψ must increase")
		}
		gain := u - prev
		if gain >= prevGain {
			t.Fatal("Ψ must have diminishing marginal gains")
		}
		prev, prevGain = u, gain
	}
}

func TestEqualWeights(t *testing.T) {
	w := Equal{}.Weights([]int{100, 5000, 9000})
	for _, v := range w {
		if v != 1 {
			t.Fatalf("Equal weights = %v", w)
		}
	}
}

func TestIndividualWeights(t *testing.T) {
	w := Individual{}.Weights([]int{99, 999})
	if math.Abs(w[0]-math.Log(100)) > 1e-12 || math.Abs(w[1]-math.Log(1000)) > 1e-12 {
		t.Fatalf("Individual weights = %v", w)
	}
}

func TestUnionWeights(t *testing.T) {
	samples := []int{100, 300}
	w := Union{}.Weights(samples)
	full := Utility(400)
	if math.Abs(w[0]-(full-Utility(300))) > 1e-12 {
		t.Fatalf("Union weight 0 = %v", w[0])
	}
	if math.Abs(w[1]-(full-Utility(100))) > 1e-12 {
		t.Fatalf("Union weight 1 = %v", w[1])
	}
	if w[1] <= w[0] {
		t.Fatal("larger holder must have larger marginal utility")
	}
}

func TestShapleyTwoWorkersClosedForm(t *testing.T) {
	// For two workers the Shapley value has a closed form:
	// φ_1 = ½[Ψ(n1) + Ψ(n1+n2) − Ψ(n2)].
	n1, n2 := 400, 1600
	w := Shapley{}.Weights([]int{n1, n2})
	want0 := 0.5 * (Utility(float64(n1)) + Utility(float64(n1+n2)) - Utility(float64(n2)))
	want1 := 0.5 * (Utility(float64(n2)) + Utility(float64(n1+n2)) - Utility(float64(n1)))
	if math.Abs(w[0]-want0) > 1e-12 || math.Abs(w[1]-want1) > 1e-12 {
		t.Fatalf("Shapley = %v, want [%v %v]", w, want0, want1)
	}
}

// TestShapleyEfficiency: Shapley values sum to the grand-coalition utility
// (the efficiency axiom) — a strong end-to-end check of the enumeration.
func TestShapleyEfficiency(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed)
		n := src.UniformInt(1, 10)
		samples := make([]int, n)
		total := 0
		for i := range samples {
			samples[i] = src.UniformInt(1, 5000)
			total += samples[i]
		}
		w := Shapley{}.Weights(samples)
		sum := 0.0
		for _, v := range w {
			sum += v
		}
		return math.Abs(sum-Utility(float64(total))) < 1e-9
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestShapleySymmetry: equal holders get equal Shapley values.
func TestShapleySymmetry(t *testing.T) {
	w := Shapley{}.Weights([]int{500, 2000, 500})
	if math.Abs(w[0]-w[2]) > 1e-12 {
		t.Fatalf("symmetric workers differ: %v", w)
	}
}

func TestShapleySampledApproximatesExact(t *testing.T) {
	samples := []int{100, 1000, 4000, 8000, 2500, 600}
	exact := Shapley{}.Weights(samples)
	sampled := Shapley{MaxExactN: 1, SampleRounds: 8000, Src: rng.New(5)}.Weights(samples)
	for i := range exact {
		rel := math.Abs(sampled[i]-exact[i]) / exact[i]
		if rel > 0.1 {
			t.Fatalf("sampled Shapley off by %.1f%% at %d (%v vs %v)", rel*100, i, sampled[i], exact[i])
		}
	}
}

func TestShapleyEdgeCases(t *testing.T) {
	if w := (Shapley{}).Weights(nil); len(w) != 0 {
		t.Fatal("empty population")
	}
	w := Shapley{}.Weights([]int{777})
	if math.Abs(w[0]-Utility(777)) > 1e-12 {
		t.Fatalf("singleton Shapley = %v", w[0])
	}
}

func TestSharesNormalization(t *testing.T) {
	for _, m := range Baselines() {
		s := Shares(m, []int{100, 900, 5000})
		sum := 0.0
		for _, v := range s {
			if v < 0 {
				t.Fatalf("%s: negative share %v", m.Name(), v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("%s: shares sum %v", m.Name(), sum)
		}
	}
}

func TestSharesAllZeroUniform(t *testing.T) {
	s := Shares(Individual{}, []int{0, 0})
	if s[0] != 0.5 || s[1] != 0.5 {
		t.Fatalf("zero-weight shares = %v", s)
	}
}

// TestMonotoneInSamples: every non-Equal baseline rewards more data with a
// weakly larger weight.
func TestMonotoneInSamples(t *testing.T) {
	samples := []int{10, 100, 1000, 5000, 9999}
	for _, m := range []Mechanism{Individual{}, Union{}, Shapley{}} {
		w := m.Weights(samples)
		for i := 1; i < len(w); i++ {
			if w[i] < w[i-1] {
				t.Fatalf("%s weights not monotone: %v", m.Name(), w)
			}
		}
	}
}

func TestBaselinesOrder(t *testing.T) {
	bs := Baselines()
	if len(bs) != 4 {
		t.Fatalf("want 4 baselines, got %d", len(bs))
	}
	names := map[string]bool{}
	for _, b := range bs {
		names[b.Name()] = true
	}
	for _, want := range []string{"Equal", "Individual", "Union", "Shapley"} {
		if !names[want] {
			t.Fatalf("missing baseline %s", want)
		}
	}
}
