// Package metrics is the runtime's observability substrate: a stdlib-only,
// allocation-light registry of atomic counters, gauges and fixed-bucket
// histograms, rendered in the Prometheus text exposition format.
//
// Instruments are resolved once (typically at construction time) and held
// as pointers; the hot-path operations — Counter.Add, Gauge.Set,
// Histogram.Observe — are single atomic operations with no locking and no
// allocation, so they are safe to call from round fan-outs and HTTP
// handlers under -race.
//
// # Determinism rule
//
// Metrics are observability-only: nothing in the federation's decision
// path may ever read them. Counters of rounds, uploads, bytes and verdicts
// are deterministic for a fixed seed; duration histograms carry wall-clock
// values and therefore vary run to run — they exist to be scraped, not
// consumed. The loopback equivalence test runs with metrics enabled to
// prove they do not perturb results.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Default is the process-wide registry components fall back to when no
// explicit registry is supplied (mirroring net/http's DefaultServeMux).
// Tests that assert exact values should pass their own New() registry.
var Default = New()

// DefBuckets are the default histogram bounds for durations in seconds,
// spanning sub-millisecond codec calls to multi-second training rounds.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (negative n is ignored — counters only
// go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by v.
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: observations land in the first
// bucket whose upper bound is >= the value, with an implicit +Inf bucket.
// Bounds are fixed at registration; Observe is lock-free.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
}

// ObserveSince records the wall-clock seconds elapsed since start.
// Durations are observability-only — see the package determinism rule.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// addFloat atomically adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Registry holds named instruments. Lookup (Counter, Gauge, Histogram)
// takes a mutex and may allocate the series key — do it once at wiring
// time and keep the returned pointer; the instruments themselves are
// lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	types    map[string]string // family -> counter|gauge|histogram
	help     map[string]string // family -> HELP text
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		types:    make(map[string]string),
		help:     make(map[string]string),
	}
}

// Counter returns (creating on first use) the counter for name and the
// given label key/value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	k := Key(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
		r.recordType(name, "counter")
	}
	return c
}

// Gauge returns (creating on first use) the gauge for name and labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	k := Key(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
		r.recordType(name, "gauge")
	}
	return g
}

// Histogram returns (creating on first use) the histogram for name and
// labels. Bounds must be sorted ascending; they apply on first creation
// only — later lookups of the same series keep the original bounds.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	k := Key(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		if len(bounds) == 0 {
			bounds = DefBuckets
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
		r.hists[k] = h
		r.recordType(name, "histogram")
	}
	return h
}

// Help attaches HELP text to a metric family.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[sanitizeName(name)] = text
}

// recordType notes a family's type (first registration wins). Caller holds
// the lock.
func (r *Registry) recordType(name, typ string) {
	fam := sanitizeName(name)
	if _, ok := r.types[fam]; !ok {
		r.types[fam] = typ
	}
}

// Reset zeroes every instrument, keeping registrations (and the pointers
// callers hold) valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// HistogramSnapshot is one histogram's frozen state. Counts are
// per-bucket (not cumulative); Counts[len(Bounds)] is the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Snapshot is a frozen, copyable view of a registry, keyed by the full
// series key (name plus rendered labels).
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// CounterValue looks up a counter by name and labels (0 if absent).
func (s Snapshot) CounterValue(name string, labels ...string) int64 {
	return s.Counters[Key(name, labels...)]
}

// GaugeValue looks up a gauge by name and labels (0 if absent).
func (s Snapshot) GaugeValue(name string, labels ...string) float64 {
	return s.Gauges[Key(name, labels...)]
}

// Snapshot freezes the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.buckets)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
		}
		s.Histograms[k] = hs
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with its TYPE (and
// HELP, when set) header, series sorted within a family, histogram buckets
// cumulative with the +Inf bucket. The output is deterministic for a fixed
// registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	r.mu.Lock()
	types := make(map[string]string, len(r.types))
	help := make(map[string]string, len(r.help))
	for k, v := range r.types {
		types[k] = v
	}
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	type series struct{ key, text string }
	families := make(map[string][]series)
	add := func(key, text string) {
		fam := familyOf(key)
		families[fam] = append(families[fam], series{key, text})
	}
	for k, v := range snap.Counters {
		add(k, fmt.Sprintf("%s %d\n", k, v))
	}
	for k, v := range snap.Gauges {
		add(k, fmt.Sprintf("%s %g\n", k, v))
	}
	for k, h := range snap.Histograms {
		var b strings.Builder
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s %d\n", bucketKey(k, fmt.Sprintf("%g", bound)), cum)
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(&b, "%s %d\n", bucketKey(k, "+Inf"), cum)
		fmt.Fprintf(&b, "%s %g\n", suffixKey(k, "_sum"), h.Sum)
		fmt.Fprintf(&b, "%s %d\n", suffixKey(k, "_count"), h.Count)
		add(k, b.String())
	}

	names := make([]string, 0, len(families))
	for fam := range families {
		names = append(names, fam)
	}
	sort.Strings(names)
	for _, fam := range names {
		if h, ok := help[fam]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, h); err != nil {
				return err
			}
		}
		typ := types[fam]
		if typ == "" {
			typ = "untyped"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ); err != nil {
			return err
		}
		ss := families[fam]
		sort.Slice(ss, func(i, j int) bool { return ss[i].key < ss[j].key })
		for _, s := range ss {
			if _, err := io.WriteString(w, s.text); err != nil {
				return err
			}
		}
	}
	return nil
}

// Key renders a series key from a metric name and alternating label
// key/value pairs: `name{k="v",k2="v2"}`. Names and label keys are
// sanitized to the Prometheus charset; label values are escaped. A
// trailing unpaired label is ignored.
func Key(name string, labels ...string) string {
	name = sanitizeName(name)
	if len(labels) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeName(labels[i]))
		b.WriteString(`="`)
		b.WriteString(escapeValue(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// familyOf strips the label block from a series key.
func familyOf(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// bucketKey splices an le label into a histogram series key and appends
// the _bucket suffix to its family.
func bucketKey(key, le string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i] + "_bucket" + key[i:len(key)-1] + `,le="` + le + `"}`
	}
	return key + `_bucket{le="` + le + `"}`
}

// suffixKey appends a family suffix (e.g. _sum) to a series key, keeping
// its labels.
func suffixKey(key, suffix string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i] + suffix + key[i:]
	}
	return key + suffix
}

// sanitizeName maps a string onto the Prometheus metric-name charset
// [a-zA-Z0-9_:], replacing other runes with '_' and prefixing a leading
// digit.
func sanitizeName(s string) string {
	ok := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' || (c >= '0' && c <= '9' && i > 0) {
			continue
		}
		ok = false
		break
	}
	if ok && s != "" {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// escapeValue escapes a label value per the exposition format.
func escapeValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
