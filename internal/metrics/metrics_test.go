package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("requests_total", "endpoint", "/v1/model")
	c.Inc()
	c.Add(4)
	c.Add(-7) // counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same (name, labels) resolves to the same instrument.
	if r.Counter("requests_total", "endpoint", "/v1/model") != c {
		t.Fatal("lookup did not return the registered counter")
	}
	g := r.Gauge("occupancy")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("latency_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	s := r.Snapshot().Histograms["latency_seconds"]
	// le semantics: 0.005 and 0.01 land in the 0.01 bucket, 0.05 in 0.1,
	// 0.5 in 1, 5 in +Inf.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
}

func TestConcurrentUpdatesAndReset(t *testing.T) {
	r := New()
	c := r.Counter("n")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("after concurrent updates: counter=%d gauge=%v hist=%d", c.Value(), g.Value(), h.Count())
	}
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset did not zero the instruments")
	}
	c.Inc() // pointers stay valid after Reset
	if c.Value() != 1 {
		t.Fatal("counter dead after Reset")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("fifl_requests_total", "endpoint", "/v1/model").Add(3)
	r.Counter("fifl_requests_total", "endpoint", "/v1/ledger").Add(1)
	r.Help("fifl_requests_total", "HTTP requests served.")
	r.Gauge("fifl_longpoll_active").Set(2)
	h := r.Histogram("fifl_latency_seconds", []float64{0.1, 1}, "endpoint", "/v1/model")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP fifl_requests_total HTTP requests served.\n",
		"# TYPE fifl_requests_total counter\n",
		`fifl_requests_total{endpoint="/v1/ledger"} 1` + "\n",
		`fifl_requests_total{endpoint="/v1/model"} 3` + "\n",
		"# TYPE fifl_longpoll_active gauge\n",
		"fifl_longpoll_active 2\n",
		"# TYPE fifl_latency_seconds histogram\n",
		`fifl_latency_seconds_bucket{endpoint="/v1/model",le="0.1"} 1` + "\n",
		`fifl_latency_seconds_bucket{endpoint="/v1/model",le="1"} 2` + "\n",
		`fifl_latency_seconds_bucket{endpoint="/v1/model",le="+Inf"} 3` + "\n",
		`fifl_latency_seconds_sum{endpoint="/v1/model"} 2.55` + "\n",
		`fifl_latency_seconds_count{endpoint="/v1/model"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Deterministic: a second render is byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if out != b2.String() {
		t.Fatal("exposition output is not deterministic")
	}
	// Series of one family sort together under a single TYPE header.
	if strings.Count(out, "# TYPE fifl_requests_total") != 1 {
		t.Fatal("family header duplicated")
	}
}

func TestKeySanitizationAndEscaping(t *testing.T) {
	if got := Key("bad name!", "l", `va"l\ue`+"\n"); got != `bad_name_{l="va\"l\\ue\n"}` {
		t.Fatalf("Key = %q", got)
	}
	if got := Key("9lead"); got != "_9lead" {
		t.Fatalf("Key = %q", got)
	}
	if got := Key("plain"); got != "plain" {
		t.Fatalf("Key = %q", got)
	}
	// Unpaired trailing label is ignored.
	if got := Key("n", "only_key"); got != "n" {
		t.Fatalf("Key = %q", got)
	}
}

func TestSnapshotLookups(t *testing.T) {
	r := New()
	r.Counter("c", "a", "b").Add(7)
	r.Gauge("g").Set(1.25)
	h := r.Histogram("observe_since", nil)
	h.ObserveSince(time.Now().Add(-10 * time.Millisecond))
	s := r.Snapshot()
	if s.CounterValue("c", "a", "b") != 7 {
		t.Fatal("CounterValue lookup failed")
	}
	if s.GaugeValue("g") != 1.25 {
		t.Fatal("GaugeValue lookup failed")
	}
	hs := s.Histograms["observe_since"]
	if hs.Count != 1 || hs.Sum <= 0 {
		t.Fatalf("ObserveSince recorded count=%d sum=%v", hs.Count, hs.Sum)
	}
}
