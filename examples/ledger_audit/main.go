// Ledger audit: the paper's §4.5 accountability story end to end. A FIFL
// federation trains while every assessment is written to the signed
// hash-chain ledger. A malicious server then tries two manipulations:
// rewriting history (defeated by hash-chain verification) and appending a
// forged reputation record to whitewash an attacker (defeated by the task
// publisher's audit recomputation, which traces the forgery to its signer
// and bans the device from server election).
package main

import (
	"context"
	"fmt"
	"log"

	"fifl/internal/chain"
	"fifl/internal/experiments"
	"fifl/internal/rng"
)

func main() {
	sc := experiments.QuickScale()
	sc.TrainRounds = 12
	sc.TrainWorkers = 6

	kinds := make([]experiments.WorkerKind, sc.TrainWorkers)
	for i := range kinds {
		kinds[i] = experiments.Honest()
	}
	attacker := sc.TrainWorkers - 1
	kinds[attacker] = experiments.SignFlip(4)

	fed := experiments.BuildFederation(sc, experiments.TaskDigitsMLP, kinds, rng.New(5).Split("audit"))
	coord := experiments.DefaultCoordinator(fed, 0.02, true) // ledger on

	for t := 0; t < sc.TrainRounds; t++ {
		if _, err := coord.RunRoundContext(context.Background(), t); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("ran %d rounds; ledger holds %d signed blocks\n", sc.TrainRounds, coord.Ledger.Len())
	fmt.Printf("attacker (worker %d) reputation on chain: %.3f\n\n", attacker, coord.Rep.Reputation(attacker))

	// 1. History is tamper-evident: verification walks hashes+signatures.
	if err := coord.Ledger.Verify(); err != nil {
		log.Fatalf("fresh ledger failed verification: %v", err)
	}
	fmt.Println("✔ full-chain verification passed (hash links + ed25519 signatures)")

	// 2. A compromised server tries to whitewash the attacker by appending
	// a forged high-reputation record. Appends are the only write the
	// chain accepts — and they are signed, so the forgery is attributable.
	forged := chain.Record{
		Kind:      chain.KindReputation,
		Iteration: sc.TrainRounds - 1,
		WorkerID:  attacker,
		Value:     0.95,
	}
	signer := coord.Signer(1)
	if _, err := coord.Ledger.Append(signer, forged); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmalicious server %q appended a forged reputation record (%.2f)\n", signer.Name, forged.Value)

	// 3. The task publisher audits: recompute the reputation from the
	// detection history and compare with the chain's latest record.
	culprit, err := coord.AuditReputation(sc.TrainRounds-1, attacker)
	if err != nil {
		log.Fatal(err)
	}
	if culprit == "" {
		log.Fatal("audit failed to notice the forgery")
	}
	fmt.Printf("✔ audit recomputation flagged the forgery; culprit traced by signature: %s\n", culprit)
	fmt.Printf("✔ device banned from server election: %v\n", coord.Banned(1))
}
