// Quickstart: run a small FIFL federation end to end through the public
// API — four honest workers and one sign-flipping attacker training a
// multi-layer perceptron on the synthetic digits task. Each round FIFL
// screens the uploads, updates reputations, assesses contributions and
// distributes rewards; the attacker is caught, excluded from aggregation
// and punished, while training converges on the honest gradients.
package main

import (
	"context"
	"fmt"
	"log"

	"fifl"
	"fifl/internal/attack"
)

func main() {
	const (
		nWorkers = 5
		nServers = 2
		rounds   = 25
		seed     = 42
	)
	src := fifl.NewRNG(seed)
	build := fifl.NewMLP(seed, 28*28, []int{64}, 10)
	local := fifl.LocalConfig{K: 1, BatchSize: 240, LR: 0.05}

	// One shared pool of synthetic digits, split IID across the workers.
	train := fifl.SynthDigits(src.Split("train"), nWorkers*300)
	test := fifl.SynthDigits(src.Split("test"), 300)
	parts := train.PartitionIID(src.Split("split"), nWorkers)

	workers := make([]fifl.Worker, nWorkers)
	for i := 0; i < nWorkers-1; i++ {
		workers[i] = fifl.NewHonestWorker(i, parts[i], build, local, src)
	}
	// The last worker flips the sign of its gradients with intensity 4.
	workers[nWorkers-1] = attack.NewSignFlipWorker(nWorkers-1, parts[nWorkers-1], build, local, src, 4)

	engine, err := fifl.NewEngine(fifl.EngineConfig{Servers: nServers, GlobalLR: 0.05}, build, workers, src)
	if err != nil {
		log.Fatal(err)
	}
	coord, err := fifl.NewCoordinator(fifl.CoordinatorConfig{
		Detection:  fifl.Detector{Threshold: 0.02},
		Reputation: fifl.DefaultReputationConfig(),
		// Zero-gradient bar with clamped, smoothed ratios (see the
		// ContributionConfig docs for why the bounds matter).
		Contribution:   fifl.ContributionConfig{BaselineWorker: -1, Clamp: 10, SmoothBH: 0.2},
		RewardPerRound: 1,
		RecordToLedger: true,
	}, engine, []int{0, 1})
	if err != nil {
		log.Fatal(err)
	}

	for t := 0; t < rounds; t++ {
		report, err := coord.RunRoundContext(context.Background(), t)
		if err != nil {
			log.Fatal(err)
		}
		if t%5 == 0 || t == rounds-1 {
			acc, loss := engine.Evaluate(test, 128)
			fmt.Printf("round %2d: accepted=%v acc=%.3f loss=%.3f\n",
				t, report.Detection.Accept, acc, loss)
		}
	}

	fmt.Println("\nworker summary (worker 4 is the attacker; honest workers hover")
	fmt.Println("near zero while the attacker's fines run ~50x larger):")
	cum := coord.CumulativeRewards()
	for i := 0; i < nWorkers; i++ {
		fmt.Printf("  worker %d: reputation=%.3f cumulative reward=%+.3f\n",
			i, coord.Rep.Reputation(i), cum[i])
	}
	if err := coord.Ledger.Verify(); err != nil {
		log.Fatalf("ledger verification failed: %v", err)
	}
	fmt.Printf("\naudit ledger intact: %d signed blocks\n", coord.Ledger.Len())
}
