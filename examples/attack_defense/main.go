// Attack defense: reproduce the heart of the paper's Figures 7 and 10 in
// one program. Two federations train LeNet on the synthetic digits task
// under the same sign-flipping attack; one aggregates blindly (plain
// FedAvg) and the other runs FIFL's attack-detection module. The undefended
// run degrades or diverges while the defended run tracks clean training.
package main

import (
	"context"
	"fmt"
	"log"

	"fifl/internal/experiments"
	"fifl/internal/rng"
)

func main() {
	sc := experiments.QuickScale()
	sc.TrainRounds = 30
	sc.TrainWorkers = 8

	kinds := make([]experiments.WorkerKind, sc.TrainWorkers)
	for i := range kinds {
		kinds[i] = experiments.Honest()
	}
	kinds[sc.TrainWorkers-1] = experiments.SignFlip(6)
	kinds[sc.TrainWorkers-2] = experiments.SignFlip(6)

	fmt.Println("federation A: plain FedAvg (no defense), 2/8 sign-flip attackers ps=6")
	fedA := experiments.BuildFederation(sc, experiments.TaskDigits, kinds, rng.New(7).Split("plain"))
	for t := 0; t < sc.TrainRounds; t++ {
		fedA.Engine.Step(t)
		if t%5 == 0 || t == sc.TrainRounds-1 {
			acc, loss := fedA.Engine.Evaluate(fedA.Test, 128)
			fmt.Printf("  round %2d: acc=%.3f loss=%.3f\n", t, acc, loss)
		}
	}

	fmt.Println("\nfederation B: FIFL detection enabled, same attack")
	fedB := experiments.BuildFederation(sc, experiments.TaskDigits, kinds, rng.New(7).Split("fifl"))
	coord := experiments.DefaultCoordinator(fedB, 0.05, false)
	caught := 0
	for t := 0; t < sc.TrainRounds; t++ {
		report, err := coord.RunRoundContext(context.Background(), t)
		if err != nil {
			log.Fatal(err)
		}
		for i, k := range kinds {
			if k.Kind == "signflip" && !report.Detection.Accept[i] && !report.Detection.Uncertain[i] {
				caught++
			}
		}
		if t%5 == 0 || t == sc.TrainRounds-1 {
			acc, loss := fedB.Engine.Evaluate(fedB.Test, 128)
			fmt.Printf("  round %2d: acc=%.3f loss=%.3f\n", t, acc, loss)
		}
	}
	fmt.Printf("\nattacker uploads rejected: %d/%d\n", caught, 2*sc.TrainRounds)
	fmt.Println("expected: federation B reaches clean-run accuracy; federation A lags or diverges")
}
