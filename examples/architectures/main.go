// Architectures: the paper's §3.2 claim in action — FIFL generalizes over
// the three representative FL architectures by varying the server-cluster
// size M: centralized (M = 1), polycentric (1 < M < N), and decentralized
// (M = N). This program runs the same attacked federation at each M and
// shows that detection quality and convergence are invariant while each
// server only handles a 1/M slice of every gradient.
package main

import (
	"context"
	"fmt"
	"log"

	"fifl/internal/experiments"
	"fifl/internal/gradvec"
	"fifl/internal/rng"
)

func main() {
	sc := experiments.QuickScale()
	sc.TrainRounds = 20
	sc.TrainWorkers = 8
	sc.BatchSize = 64
	sc.SamplesPerWorker = 300

	for _, m := range []int{1, 4, 8} {
		label := "polycentric"
		if m == 1 {
			label = "centralized"
		} else if m == sc.TrainWorkers {
			label = "decentralized"
		}
		fmt.Printf("== M=%d (%s) ==\n", m, label)

		cfg := sc
		cfg.Servers = m
		kinds := make([]experiments.WorkerKind, cfg.TrainWorkers)
		for i := range kinds {
			kinds[i] = experiments.Honest()
		}
		kinds[cfg.TrainWorkers-1] = experiments.SignFlip(4)
		f := experiments.BuildFederation(cfg, experiments.TaskDigitsMLP, kinds,
			rng.New(11).Split(fmt.Sprintf("arch-%d", m)))
		coord := experiments.DefaultCoordinator(f, 0.02, false)

		// Show the slice sizes each server aggregates.
		dim := len(f.Engine.Params())
		fmt.Printf("gradient dimension %d split into %d slice(s):", dim, m)
		for j := 0; j < m; j++ {
			lo, hi := gradvec.SliceBounds(dim, m, j)
			if j < 3 || j == m-1 {
				fmt.Printf(" [%d,%d)", lo, hi)
			} else if j == 3 {
				fmt.Printf(" ...")
			}
		}
		fmt.Println()

		caught, certain := 0, 0
		for t := 0; t < cfg.TrainRounds; t++ {
			rep, err := coord.RunRoundContext(context.Background(), t)
			if err != nil {
				log.Fatal(err)
			}
			last := cfg.TrainWorkers - 1
			if !rep.Detection.Uncertain[last] {
				certain++
				if !rep.Detection.Accept[last] {
					caught++
				}
			}
		}
		acc, loss := f.Engine.Evaluate(f.Test, 128)
		fmt.Printf("attacker caught %d/%d rounds; final acc=%.3f loss=%.3f\n\n", caught, certain, acc, loss)
	}
	fmt.Println("expected: similar catch rates and accuracy at every M —")
	fmt.Println("the architecture changes who aggregates, not what is computed.")
}
