// Incentive market: the paper's §5.2 competition between five federations
// that differ only in their incentive mechanism — FIFL vs the Equal,
// Individual, Union and Shapley baselines. Workers with heterogeneous data
// holdings join greedily in proportion to the rewards offered; we report
// how much data each mechanism attracts and its system revenue, first in a
// reliable market and then under the paper's worst-case 38.5% attacker
// scenario, where only FIFL's revenue survives.
package main

import (
	"fmt"

	"fifl/internal/market"
	"fifl/internal/rng"
)

func main() {
	const (
		repeats = 50
		nPop    = 20
		budget  = 1.0
	)
	schemes := market.Schemes()

	for _, scenario := range []struct {
		name       string
		attackFrac float64
		degree     float64
	}{
		{"reliable market (no attackers)", 0, 0},
		{"unreliable market (38.5% attackers, paper's worst case)", 0.385, 0.385},
	} {
		fmt.Printf("== %s ==\n", scenario.name)
		dataShare := make([]float64, len(schemes))
		revenue := make([]float64, len(schemes))
		root := rng.New(99)
		for rep := 0; rep < repeats; rep++ {
			src := root.SplitN(scenario.name, rep)
			pop := market.Population(src, nPop, 10000, scenario.attackFrac, scenario.degree)
			attract := market.Attractiveness(schemes, pop, budget)
			members := market.AssignGreedy(src.Split("assign"), attract, pop, 1.5)
			total := 0.0
			for _, w := range pop {
				if !w.Attacker {
					total += float64(w.Samples)
				}
			}
			for f, s := range schemes {
				honest := 0.0
				for _, w := range members[f] {
					if !w.Attacker {
						honest += float64(w.Samples)
					}
				}
				dataShare[f] += honest / total
				revenue[f] += s.Revenue(members[f])
			}
		}
		fmt.Printf("%-12s %12s %12s %16s\n", "mechanism", "data share", "revenue", "rel. to FIFL")
		for f, s := range schemes {
			rel := (revenue[f]/revenue[0] - 1) * 100
			fmt.Printf("%-12s %11.1f%% %12.3f %+15.1f%%\n",
				s.Name(), dataShare[f]/repeats*100, revenue[f]/float64(repeats), rel)
		}
		fmt.Println()
	}
	fmt.Println("expected: in the reliable market all five are close (Equal trails);")
	fmt.Println("under attack every baseline collapses while FIFL holds its revenue.")
}
