module fifl

go 1.22
