#!/bin/sh
# Tier-1 gate: format, vet, build, race-test and fuzz-smoke the module.
#
# internal/experiments is excluded from the -race leg only: its figure
# tests run real training loops that exceed CI timeouts under the race
# detector's ~10x slowdown, and the package spawns no goroutines of its
# own — all concurrency lives in the packages below it (fl, parallel,
# tensor, netsim, transport), which are raced here. It is still covered
# by the plain test leg.
set -eux
cd "$(dirname "$0")"

# gofmt gate: fail on any unformatted file.
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: unformatted files:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./internal/experiments/
go test -race -timeout 20m $(go list ./... | grep -v internal/experiments)

# Fuzz smoke: the wire codec must survive 5s of hostile frames without
# panicking (-fuzz accepts exactly one package).
go test -run='^$' -fuzz=FuzzDecodeUpload -fuzztime=5s ./internal/transport/codec

# Observability smoke: a tiny simulated run must dump its metrics in the
# Prometheus text format with the expected round count.
BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT
go build -o "$BIN/fifl-sim" ./cmd/fifl-sim
go build -o "$BIN/fifl-node" ./cmd/fifl-node
"$BIN/fifl-sim" -workers 3 -rounds 1 -samples 40 -metrics | grep -q '^fifl_engine_rounds_total 1$'

# Coordinator smoke: /v1/metrics serves the exposition format and -pprof
# serves the profiling mux on its own listener, without any worker joining.
"$BIN/fifl-node" -role coordinator -workers 2 -rounds 1 -samples 40 \
    -listen 127.0.0.1:7391 -pprof 127.0.0.1:7392 &
NODE_PID=$!
trap 'kill "$NODE_PID" 2>/dev/null; rm -rf "$BIN"' EXIT
for _ in $(seq 1 50); do
    if curl -fsS http://127.0.0.1:7391/v1/healthz >/dev/null 2>&1; then break; fi
    sleep 0.2
done
# (plain grep, not -q: -q closes the pipe early and makes curl -f report
# a spurious write error)
curl -fsS http://127.0.0.1:7391/v1/healthz | grep '"status":"ok"' >/dev/null
curl -fsS http://127.0.0.1:7391/v1/metrics | grep '^# TYPE fifl_http_requests_total counter$' >/dev/null
curl -fsS http://127.0.0.1:7392/debug/pprof/cmdline >/dev/null
kill "$NODE_PID"
