#!/bin/sh
# Tier-1 gate: vet, build and race-test the module.
#
# internal/experiments is excluded from the -race leg only: its figure
# tests run real training loops that exceed CI timeouts under the race
# detector's ~10x slowdown, and the package spawns no goroutines of its
# own — all concurrency lives in the packages below it (fl, parallel,
# tensor, netsim), which are raced here. It is still covered by the
# plain test leg.
set -eux
cd "$(dirname "$0")"
go vet ./...
go build ./...
go test ./internal/experiments/
go test -race -timeout 20m $(go list ./... | grep -v internal/experiments)
