#!/bin/sh
# Tier-1 gate: format, vet, build, race-test and fuzz-smoke the module.
#
# internal/experiments is excluded from the -race leg only: its figure
# tests run real training loops that exceed CI timeouts under the race
# detector's ~10x slowdown, and the package spawns no goroutines of its
# own — all concurrency lives in the packages below it (fl, parallel,
# tensor, netsim, transport), which are raced here. It is still covered
# by the plain test leg.
set -eux
cd "$(dirname "$0")"

# gofmt gate: fail on any unformatted file.
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: unformatted files:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./internal/experiments/
go test -race -timeout 20m $(go list ./... | grep -v internal/experiments)

# Differential gate: the staged round pipeline must stay bit-identical
# to the frozen legacy monolith (reports, reputations, rewards, ledger
# bytes) across seeds and a quorum-degraded round, under the race
# detector so the parallel Detect/Contribution fan-out is raced too.
go test -race -run TestPipelineMatchesLegacy ./internal/core

# Benchmark smoke: one pipeline-vs-legacy round at each federation size
# must complete (full numbers live in BENCH_pipeline.json).
go test -run '^$' -bench=RunRound -benchtime=1x .

# Fuzz smoke: the wire codec must survive 5s of hostile frames without
# panicking (-fuzz accepts exactly one package), and the checkpoint codec
# must reject truncated/bit-flipped snapshots without panicking.
go test -run='^$' -fuzz=FuzzDecodeUpload -fuzztime=5s ./internal/transport/codec
go test -run='^$' -fuzz=FuzzReadCheckpoint -fuzztime=5s ./internal/persist

# Observability smoke: a tiny simulated run must dump its metrics in the
# Prometheus text format with the expected round count.
BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT
go build -o "$BIN/fifl-sim" ./cmd/fifl-sim
go build -o "$BIN/fifl-node" ./cmd/fifl-node
"$BIN/fifl-sim" -workers 3 -rounds 1 -samples 40 -metrics | grep -q '^fifl_engine_rounds_total 1$'

# Coordinator smoke: /v1/metrics serves the exposition format and -pprof
# serves the profiling mux on its own listener, without any worker joining.
"$BIN/fifl-node" -role coordinator -workers 2 -rounds 1 -samples 40 \
    -listen 127.0.0.1:7391 -pprof 127.0.0.1:7392 &
NODE_PID=$!
trap 'kill "$NODE_PID" 2>/dev/null; rm -rf "$BIN"' EXIT
for _ in $(seq 1 50); do
    if curl -fsS http://127.0.0.1:7391/v1/healthz >/dev/null 2>&1; then break; fi
    sleep 0.2
done
# (plain grep, not -q: -q closes the pipe early and makes curl -f report
# a spurious write error)
curl -fsS http://127.0.0.1:7391/v1/healthz | grep '"status":"ok"' >/dev/null
curl -fsS http://127.0.0.1:7391/v1/metrics | grep '^# TYPE fifl_http_requests_total counter$' >/dev/null
curl -fsS http://127.0.0.1:7392/debug/pprof/cmdline >/dev/null
kill "$NODE_PID"
KR_CPID= KR_W0= KR_W1= KR_W2=
# shellcheck disable=SC2064
trap 'kill $KR_CPID $KR_W0 $KR_W1 $KR_W2 2>/dev/null || true; rm -rf "$BIN"' EXIT

# Kill-and-resume smoke: a networked 6-round federation whose coordinator
# is SIGKILLed after round 3's checkpoint and restarted from it must end
# with an audit ledger byte-identical to an uninterrupted run's. The
# workers stay up and ride through the outage on their retry budget
# (bit-identity requires the worker processes to survive — DESIGN.md
# §4.13).
KR_PORT=7393
KR_COMMON="-workers 3 -samples 60 -seed 11"
kr_coordinator() {
    # $1 = extra coordinator flags, $2 = log file
    # shellcheck disable=SC2086
    "$BIN/fifl-node" -role coordinator $KR_COMMON -rounds 6 -eval 0 \
        -listen 127.0.0.1:$KR_PORT -linger 60s $1 > "$2" 2>&1 &
    KR_CPID=$!
    for _ in $(seq 1 100); do
        if curl -fsS http://127.0.0.1:$KR_PORT/v1/healthz >/dev/null 2>&1; then break; fi
        sleep 0.2
    done
}
kr_workers() {
    # shellcheck disable=SC2086
    "$BIN/fifl-node" -role worker $KR_COMMON -id 0 -retry 60 -retry-backoff 250ms \
        -coordinator http://127.0.0.1:$KR_PORT > "$BIN/kr-w0.log" 2>&1 &
    KR_W0=$!
    # shellcheck disable=SC2086
    "$BIN/fifl-node" -role worker $KR_COMMON -id 1 -retry 60 -retry-backoff 250ms \
        -coordinator http://127.0.0.1:$KR_PORT > "$BIN/kr-w1.log" 2>&1 &
    KR_W1=$!
    # shellcheck disable=SC2086
    "$BIN/fifl-node" -role worker $KR_COMMON -id 2 -retry 60 -retry-backoff 250ms \
        -coordinator http://127.0.0.1:$KR_PORT > "$BIN/kr-w2.log" 2>&1 &
    KR_W2=$!
}

# Arm 1: uninterrupted reference run.
kr_coordinator "" "$BIN/kr-coord-ref.log"
kr_workers
wait "$KR_W0" "$KR_W1" "$KR_W2"
curl -fsS http://127.0.0.1:$KR_PORT/v1/ledger > "$BIN/kr-ledger-ref.bin"
kill "$KR_CPID" 2>/dev/null || true
wait "$KR_CPID" 2>/dev/null || true

# Arm 2: checkpoint each round, halt (blocked, checkpoint on disk) after
# round 3, SIGKILL, restart from the checkpoint, finish rounds 3..5.
kr_coordinator "-checkpoint $BIN/kr-ck -checkpoint-every 1 -halt-after 3" "$BIN/kr-coord-kill.log"
kr_workers
for _ in $(seq 1 200); do
    if grep -q 'blocking until killed' "$BIN/kr-coord-kill.log"; then break; fi
    sleep 0.2
done
grep -q 'blocking until killed' "$BIN/kr-coord-kill.log"
kill -9 "$KR_CPID"
wait "$KR_CPID" 2>/dev/null || true
kr_coordinator "-checkpoint $BIN/kr-ck -checkpoint-every 1" "$BIN/kr-coord-resume.log"
wait "$KR_W0" "$KR_W1" "$KR_W2"
curl -fsS http://127.0.0.1:$KR_PORT/v1/ledger > "$BIN/kr-ledger-resumed.bin"
kill "$KR_CPID" 2>/dev/null || true
wait "$KR_CPID" 2>/dev/null || true

grep -q 'resumed from' "$BIN/kr-coord-resume.log"
cmp "$BIN/kr-ledger-ref.bin" "$BIN/kr-ledger-resumed.bin"
