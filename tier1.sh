#!/bin/sh
# Tier-1 gate: format, vet, build, race-test and fuzz-smoke the module.
#
# internal/experiments is excluded from the -race leg only: its figure
# tests run real training loops that exceed CI timeouts under the race
# detector's ~10x slowdown, and the package spawns no goroutines of its
# own — all concurrency lives in the packages below it (fl, parallel,
# tensor, netsim, transport), which are raced here. It is still covered
# by the plain test leg.
set -eux
cd "$(dirname "$0")"

# gofmt gate: fail on any unformatted file.
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: unformatted files:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./internal/experiments/
go test -race -timeout 20m $(go list ./... | grep -v internal/experiments)

# Fuzz smoke: the wire codec must survive 5s of hostile frames without
# panicking (-fuzz accepts exactly one package).
go test -run='^$' -fuzz=FuzzDecodeUpload -fuzztime=5s ./internal/transport/codec
